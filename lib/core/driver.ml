open Lg_support

type options = {
  subsumption : bool;
  dead_opt : bool;
  max_passes : int;
  emit_listing : bool;
  emit_code : bool;
  apt_backend : Lg_apt.Aptfile.backend;
}

let default_options =
  {
    subsumption = true;
    dead_opt = true;
    max_passes = 16;
    emit_listing = true;
    emit_code = true;
    apt_backend = Lg_apt.Aptfile.Mem;
  }

let engine_options options =
  { Engine.default_options with Engine.backend = options.apt_backend }

type artifact = {
  ir : Ir.t;
  passes : Pass_assign.result;
  dead : Dead.t;
  alloc : Subsume.allocation;
  plan : Plan.t;
  modules : Pascal_gen.module_code list;
  listing : string;
  diag : Diag.collector;
  overlay_seconds : (string * float) list;
  source_lines : int;
}

let timed timings name f =
  let t0 = Sys.time () in
  let result = f () in
  let t1 = Sys.time () in
  timings := (name, t1 -. t0) :: !timings;
  result

let analyses ~options ir pr =
  let mode = if options.dead_opt then Dead.Optimized else Dead.Keep_all in
  let dead = Dead.analyze ~mode ir pr in
  let alloc =
    if options.subsumption then Subsume.analyze ir pr dead
    else Subsume.none ir
  in
  (dead, alloc)

let plan_of_ir ?(options = default_options) ir =
  let pr = Pass_assign.compute_exn ~max_passes:options.max_passes ir in
  let dead, alloc = analyses ~options ir pr in
  Schedule.build ir pr ~dead ~alloc

let process ?(options = default_options) ~file source =
  let diag = Diag.create () in
  let timings = ref [] in
  let source_lines = Lg_scanner.Engine.line_count source in
  let ast = timed timings "parse" (fun () -> Ag_parse.parse ~file ~diag source) in
  match ast with
  | None -> Error diag
  | Some ast -> (
      let ir =
        timed timings "semantic" (fun () -> Check.check ~source_lines ~diag ast)
      in
      match ir with
      | None -> Error diag
      | Some ir -> (
          let pr =
            timed timings "evaluability" (fun () ->
                Pass_assign.compute ~max_passes:options.max_passes ~diag ir)
          in
          match pr with
          | None ->
              (* Tell the user whether the grammar is ill-defined or merely
                 outside the alternating-pass class. *)
              Diag.info diag Loc.dummy "%s" (Circularity.explain_rejection ir);
              Error diag
          | Some pr ->
              let plan =
                timed timings "planning" (fun () ->
                    let dead, alloc = analyses ~options ir pr in
                    Schedule.build ir pr ~dead ~alloc)
              in
              let listing =
                if options.emit_listing then
                  timed timings "listing" (fun () ->
                      Listing.generate ~source ~passes:pr
                        ~dead:plan.Plan.dead ~alloc:plan.Plan.alloc ir diag)
                else ""
              in
              let modules =
                if options.emit_code then
                  List.init pr.Pass_assign.n_passes (fun i ->
                      timed timings
                        (Printf.sprintf "codegen pass %d" (i + 1))
                        (fun () -> Pascal_gen.generate_pass plan ~pass:(i + 1)))
                else []
              in
              Ok
                {
                  ir;
                  passes = pr;
                  dead = plan.Plan.dead;
                  alloc = plan.Plan.alloc;
                  plan;
                  modules;
                  listing;
                  diag;
                  overlay_seconds = List.rev !timings;
                  source_lines;
                }))

let process_exn ?options ~file source =
  match process ?options ~file source with
  | Ok artifact -> artifact
  | Error diag -> failwith (Format.asprintf "Driver.process:@.%a" Diag.pp_all diag)

let throughput_lines_per_minute artifact =
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 artifact.overlay_seconds in
  if total <= 0.0 then infinity
  else float_of_int artifact.source_lines /. total *. 60.0
