open Lg_support
open Ag_ast

type pv =
  | Tok of Lg_scanner.Engine.token
  | Pspec of spec
  | Psections of section list  (** reversed *)
  | Psection of section
  | Psymdecls of sym_decl list  (** reversed *)
  | Psymdecl of sym_decl
  | Pattrdecls of attr_decl list  (** reversed *)
  | Pattrdecl of attr_decl
  | Pkind of attr_kind
  | Pprods of prod_decl list  (** reversed *)
  | Pprod of prod_decl
  | Prhs of string list  (** reversed *)
  | Plimb of string option
  | Psems of semfn list  (** reversed *)
  | Psemfn of semfn
  | Ptargets of target list  (** reversed *)
  | Ptarget of target
  | Pexpr of expr
  | Pexprs of expr list  (** reversed *)
  | Pelifs of branch list  (** reversed *)

let tok = function Tok t -> t | _ -> assert false
let lexeme v = (tok v).Lg_scanner.Engine.lexeme
let span v = (tok v).Lg_scanner.Engine.span
let expr = function Pexpr e -> e | _ -> assert false
let exprs = function Pexprs es -> List.rev es | _ -> assert false

(* STRING lexemes arrive with their quotes and escapes. *)
let unquote s =
  let body = String.sub s 1 (String.length s - 2) in
  let buf = Buffer.create (String.length body) in
  let rec go i =
    if i < String.length body then
      if Char.equal body.[i] '\\' && i + 1 < String.length body then begin
        (match body.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf body.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let binop op a b =
  Ebinop (op, a, b, Loc.merge (expr_span a) (expr_span b))

let reduce_action tag children =
  match (tag, children) with
  | "spec", [ g; name; _; Psections secs ] ->
      Pspec
        { name = lexeme name; sections = List.rev secs; sp_span = span g }
  | "sections_snoc", [ Psections secs; Psection s ] -> Psections (s :: secs)
  | "sections_one", [ Psection s ] -> Psections [ s ]
  | "sec_root", [ _; name; _ ] -> Psection (Sec_root (lexeme name, span name))
  | "sec_strat_bu", [ s; _; _ ] -> Psection (Sec_strategy (Bottom_up, span s))
  | "sec_strat_rd", [ s; _; _ ] ->
      Psection (Sec_strategy (Recursive_descent, span s))
  | "sec_terminals", [ _; Psymdecls ds; _ ] ->
      Psection (Sec_symbols (Sterminals, List.rev ds))
  | "sec_nonterminals", [ _; Psymdecls ds; _ ] ->
      Psection (Sec_symbols (Snonterminals, List.rev ds))
  | "sec_limbs", [ _; Psymdecls ds; _ ] ->
      Psection (Sec_symbols (Slimbs, List.rev ds))
  | "sec_prods", [ _; Pprods ps; _ ] -> Psection (Sec_productions (List.rev ps))
  | "symdecls_snoc", [ Psymdecls ds; Psymdecl d ] -> Psymdecls (d :: ds)
  | "symdecls_one", [ Psymdecl d ] -> Psymdecls [ d ]
  | "symdecl_plain", [ name; _ ] ->
      Psymdecl { sym_name = lexeme name; sym_attrs = []; s_span = span name }
  | "symdecl_attrs", [ name; _; Pattrdecls ds; _ ] ->
      Psymdecl
        { sym_name = lexeme name; sym_attrs = List.rev ds; s_span = span name }
  | "attrdecls_snoc", [ Pattrdecls ds; _; Pattrdecl d ] -> Pattrdecls (d :: ds)
  | "attrdecls_one", [ Pattrdecl d ] -> Pattrdecls [ d ]
  | "attrdecl_kind", [ Pkind k; name; _; ty ] ->
      Pattrdecl
        {
          attr_name = lexeme name;
          attr_type = lexeme ty;
          attr_kind = k;
          a_span = span name;
        }
  | "attrdecl_plain", [ name; _; ty ] ->
      Pattrdecl
        {
          attr_name = lexeme name;
          attr_type = lexeme ty;
          attr_kind = Kplain;
          a_span = span name;
        }
  | "kind_inh", [ _ ] -> Pkind Kinh
  | "kind_syn", [ _ ] -> Pkind Ksyn
  | "kind_intr", [ _ ] -> Pkind Kintrinsic
  | "prods_snoc", [ Pprods ps; Pprod p ] -> Pprods (p :: ps)
  | "prods_one", [ Pprod p ] -> Pprods [ p ]
  | "prod", [ lhs; _; Prhs rhs; Plimb limb; Psems sems; _ ] ->
      Pprod
        {
          lhs = lexeme lhs;
          rhs = List.rev rhs;
          limb;
          sems = List.rev sems;
          p_span = span lhs;
        }
  | "rhs_snoc", [ Prhs rhs; name ] -> Prhs (lexeme name :: rhs)
  | "rhs_nil", [] -> Prhs []
  | "limb_some", [ _; name ] -> Plimb (Some (lexeme name))
  | "limb_none", [] -> Plimb None
  | "sem_some", [ _; Psems sems ] -> Psems sems
  | "sem_none", [] -> Psems []
  | "semfns_snoc", [ Psems sems; _; Psemfn f ] -> Psems (f :: sems)
  | "semfns_one", [ Psemfn f ] -> Psems [ f ]
  | "semfn", [ Ptargets targets; _; Pexpr rhs ] ->
      let targets = List.rev targets in
      let f_span =
        match targets with
        | t :: _ -> Loc.merge (target_span t) (expr_span rhs)
        | [] -> expr_span rhs
      in
      Psemfn { targets; rhs; f_span }
  | "targets_snoc", [ Ptargets ts; _; Ptarget t ] -> Ptargets (t :: ts)
  | "targets_one", [ Ptarget t ] -> Ptargets [ t ]
  | "target_dot", [ occ; _; attr ] ->
      Ptarget (Tdot (lexeme occ, lexeme attr, Loc.merge (span occ) (span attr)))
  | "target_bare", [ name ] -> Ptarget (Tbare (lexeme name, span name))
  | ("expr_disj" | "expr_if"), [ Pexpr e ] -> Pexpr e
  | "ifexpr", [ kw; Pexpr cond; _; thn; Pelifs elifs; _; els; endkw ] ->
      let first = { cond; values = exprs thn } in
      Pexpr
        (Eif
           ( first :: List.rev elifs,
             exprs els,
             Loc.merge (span kw) (span endkw) ))
  | "elif_snoc", [ Pelifs elifs; _; Pexpr cond; _; values ] ->
      Pelifs ({ cond; values = exprs values } :: elifs)
  | "elif_nil", [] -> Pelifs []
  | "exprlist_snoc", [ Pexprs es; _; Pexpr e ] -> Pexprs (e :: es)
  | "exprlist_one", [ Pexpr e ] -> Pexprs [ e ]
  | "or", [ a; _; b ] -> Pexpr (binop Or (expr a) (expr b))
  | "and", [ a; _; b ] -> Pexpr (binop And (expr a) (expr b))
  | "eq", [ a; _; b ] -> Pexpr (binop Eq (expr a) (expr b))
  | "ne", [ a; _; b ] -> Pexpr (binop Ne (expr a) (expr b))
  | "lt", [ a; _; b ] -> Pexpr (binop Lt (expr a) (expr b))
  | "gt", [ a; _; b ] -> Pexpr (binop Gt (expr a) (expr b))
  | "le", [ a; _; b ] -> Pexpr (binop Le (expr a) (expr b))
  | "ge", [ a; _; b ] -> Pexpr (binop Ge (expr a) (expr b))
  | "add", [ a; _; b ] -> Pexpr (binop Add (expr a) (expr b))
  | "sub", [ a; _; b ] -> Pexpr (binop Sub (expr a) (expr b))
  | ("disj_one" | "conj_one" | "rel_one" | "arith_one" | "term_atom"), [ Pexpr e ]
    ->
      Pexpr e
  | "not", [ kw; Pexpr e ] ->
      Pexpr (Enot (e, Loc.merge (span kw) (expr_span e)))
  | "neg", [ kw; Pexpr e ] ->
      Pexpr (Eneg (e, Loc.merge (span kw) (expr_span e)))
  | "num", [ n ] -> Pexpr (Enum (int_of_string (lexeme n), span n))
  | "str", [ s ] -> Pexpr (Estr (unquote (lexeme s), span s))
  | "true", [ t ] -> Pexpr (Ebool (true, span t))
  | "false", [ t ] -> Pexpr (Ebool (false, span t))
  | "ident", [ x ] -> Pexpr (Eident (lexeme x, span x))
  | "dotref", [ occ; _; attr ] ->
      Pexpr (Edot (lexeme occ, lexeme attr, Loc.merge (span occ) (span attr)))
  | "call", [ f; _; Pexprs args; rp ] ->
      Pexpr (Ecall (lexeme f, List.rev args, Loc.merge (span f) (span rp)))
  | "call0", [ f; _; rp ] ->
      Pexpr (Ecall (lexeme f, [], Loc.merge (span f) (span rp)))
  | "paren", [ _; Pexpr e; _ ] -> Pexpr e
  | tag, children ->
      invalid_arg
        (Printf.sprintf "Ag_parse: bad reduction %s/%d" tag
           (List.length children))

let parse ~file ~diag input =
  let tables = Lg_support.Once.force Ag_grammar.tables in
  let g = Lg_lalr.Tables.grammar tables in
  let tokens = Ag_lexer.scan ~file ~diag input in
  let term_of kind =
    match Lg_grammar.Cfg.find_terminal g kind with
    | Some t -> t
    | None -> invalid_arg (Printf.sprintf "Ag_parse: unknown token kind %s" kind)
  in
  let input_tokens =
    List.map (fun t -> (term_of t.Lg_scanner.Engine.kind, t)) tokens
  in
  let token_array = Array.of_list tokens in
  let result =
    Lg_lalr.Driver.parse tables
      ~shift:(fun _ t -> Tok t)
      ~reduce:(fun prod children ->
        reduce_action g.Lg_grammar.Cfg.productions.(prod).Lg_grammar.Cfg.tag
          children)
      input_tokens
  in
  match result with
  | Ok (Pspec spec) -> Some spec
  | Ok _ -> assert false
  | Error _ ->
      (* Report every syntax error in the file, like overlay 1 of the
         original, which "writes a list of all syntactic errors". *)
      let report (e : Lg_lalr.Driver.error) =
        let at_span =
          if e.Lg_lalr.Driver.at < Array.length token_array then
            token_array.(e.Lg_lalr.Driver.at).Lg_scanner.Engine.span
          else if Array.length token_array > 0 then
            token_array.(Array.length token_array - 1).Lg_scanner.Engine.span
          else Loc.span file Loc.start_pos Loc.start_pos
        in
        let expected =
          e.Lg_lalr.Driver.expected
          |> List.map (Lg_grammar.Cfg.terminal_name g)
          |> String.concat ", "
        in
        let found =
          if e.Lg_lalr.Driver.at < Array.length token_array then
            token_array.(e.Lg_lalr.Driver.at).Lg_scanner.Engine.kind
          else "end of input"
        in
        Diag.error diag at_span "syntax error: found %s, expected one of: %s"
          found expected
      in
      List.iter report (Lg_lalr.Driver.diagnose tables input_tokens);
      None

let parse_exn ~file input =
  let diag = Diag.create () in
  match parse ~file ~diag input with
  | Some spec when Diag.is_ok diag -> spec
  | _ ->
      failwith
        (Format.asprintf "Ag_parse.parse_exn:@.%a" Diag.pp_all diag)
