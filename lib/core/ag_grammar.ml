let nonterminals =
  [
    "spec";
    "sections";
    "section";
    "symdecls";
    "symdecl";
    "attrdecls";
    "attrdecl";
    "kind";
    "prods";
    "prod";
    "rhssyms";
    "limbopt";
    "semopt";
    "semfns";
    "semfn";
    "targets";
    "target";
    "expr";
    "ifexpr";
    "eliflist";
    "exprlist";
    "disj";
    "conj";
    "rel";
    "arith";
    "term";
    "atom";
  ]

(* (lhs, rhs, tag) — tags are the reduce-action keys used by Ag_parse. *)
let productions =
  [
    ("spec", [ "GRAMMAR"; "IDENT"; "SEMI"; "sections" ], "spec");
    ("sections", [ "sections"; "section" ], "sections_snoc");
    ("sections", [ "section" ], "sections_one");
    ("section", [ "ROOT"; "IDENT"; "SEMI" ], "sec_root");
    ("section", [ "STRATEGY"; "BOTTOM_UP"; "SEMI" ], "sec_strat_bu");
    ("section", [ "STRATEGY"; "RECURSIVE_DESCENT"; "SEMI" ], "sec_strat_rd");
    ("section", [ "TERMINALS"; "symdecls"; "END" ], "sec_terminals");
    ("section", [ "NONTERMINALS"; "symdecls"; "END" ], "sec_nonterminals");
    ("section", [ "LIMBS"; "symdecls"; "END" ], "sec_limbs");
    ("section", [ "PRODUCTIONS"; "prods"; "END" ], "sec_prods");
    ("symdecls", [ "symdecls"; "symdecl" ], "symdecls_snoc");
    ("symdecls", [ "symdecl" ], "symdecls_one");
    ("symdecl", [ "IDENT"; "SEMI" ], "symdecl_plain");
    ("symdecl", [ "IDENT"; "HAS"; "attrdecls"; "SEMI" ], "symdecl_attrs");
    ("attrdecls", [ "attrdecls"; "COMMA"; "attrdecl" ], "attrdecls_snoc");
    ("attrdecls", [ "attrdecl" ], "attrdecls_one");
    ("attrdecl", [ "kind"; "IDENT"; "COLON"; "IDENT" ], "attrdecl_kind");
    ("attrdecl", [ "IDENT"; "COLON"; "IDENT" ], "attrdecl_plain");
    ("kind", [ "INH" ], "kind_inh");
    ("kind", [ "SYN" ], "kind_syn");
    ("kind", [ "INTRINSIC" ], "kind_intr");
    ("prods", [ "prods"; "prod" ], "prods_snoc");
    ("prods", [ "prod" ], "prods_one");
    ( "prod",
      [ "IDENT"; "CCEQ"; "rhssyms"; "limbopt"; "semopt"; "SEMI" ],
      "prod" );
    ("rhssyms", [ "rhssyms"; "IDENT" ], "rhs_snoc");
    ("rhssyms", [], "rhs_nil");
    ("limbopt", [ "ARROW"; "IDENT" ], "limb_some");
    ("limbopt", [], "limb_none");
    ("semopt", [ "COLON"; "semfns" ], "sem_some");
    ("semopt", [], "sem_none");
    ("semfns", [ "semfns"; "COMMA"; "semfn" ], "semfns_snoc");
    ("semfns", [ "semfn" ], "semfns_one");
    ("semfn", [ "targets"; "EQ"; "expr" ], "semfn");
    ("targets", [ "targets"; "COMMA"; "target" ], "targets_snoc");
    ("targets", [ "target" ], "targets_one");
    ("target", [ "IDENT"; "DOT"; "IDENT" ], "target_dot");
    ("target", [ "IDENT" ], "target_bare");
    ("expr", [ "disj" ], "expr_disj");
    ("expr", [ "ifexpr" ], "expr_if");
    ( "ifexpr",
      [ "IF"; "expr"; "THEN"; "exprlist"; "eliflist"; "ELSE"; "exprlist"; "ENDIF" ],
      "ifexpr" );
    ("eliflist", [ "eliflist"; "ELSIF"; "expr"; "THEN"; "exprlist" ], "elif_snoc");
    ("eliflist", [], "elif_nil");
    ("exprlist", [ "exprlist"; "COMMA"; "expr" ], "exprlist_snoc");
    ("exprlist", [ "expr" ], "exprlist_one");
    ("disj", [ "disj"; "OR"; "conj" ], "or");
    ("disj", [ "conj" ], "disj_one");
    ("conj", [ "conj"; "AND"; "rel" ], "and");
    ("conj", [ "rel" ], "conj_one");
    ("rel", [ "arith"; "EQ"; "arith" ], "eq");
    ("rel", [ "arith"; "NE"; "arith" ], "ne");
    ("rel", [ "arith"; "LT"; "arith" ], "lt");
    ("rel", [ "arith"; "GT"; "arith" ], "gt");
    ("rel", [ "arith"; "LE"; "arith" ], "le");
    ("rel", [ "arith"; "GE"; "arith" ], "ge");
    ("rel", [ "arith" ], "rel_one");
    ("arith", [ "arith"; "PLUS"; "term" ], "add");
    ("arith", [ "arith"; "MINUS"; "term" ], "sub");
    ("arith", [ "term" ], "arith_one");
    ("term", [ "NOT"; "term" ], "not");
    ("term", [ "MINUS"; "term" ], "neg");
    ("term", [ "atom" ], "term_atom");
    ("atom", [ "NUMBER" ], "num");
    ("atom", [ "STRING" ], "str");
    ("atom", [ "TRUE" ], "true");
    ("atom", [ "FALSE" ], "false");
    ("atom", [ "IDENT" ], "ident");
    ("atom", [ "IDENT"; "DOT"; "IDENT" ], "dotref");
    ("atom", [ "IDENT"; "LPAREN"; "exprlist"; "RPAREN" ], "call");
    ("atom", [ "IDENT"; "LPAREN"; "RPAREN" ], "call0");
    ("atom", [ "LPAREN"; "expr"; "RPAREN" ], "paren");
  ]

let cfg =
  Lg_support.Once.make (fun () ->
      Lg_grammar.Cfg.make ~terminals:Ag_lexer.token_kinds ~nonterminals
        ~start:"spec" productions)

let tables =
  Lg_support.Once.make (fun () ->
      let t = Lg_lalr.Tables.build (Lg_support.Once.force cfg) in
     (match Lg_lalr.Tables.unresolved_conflicts t with
     | [] -> ()
     | c :: _ ->
         failwith
           (Format.asprintf "Ag_grammar: the AG language grammar has a %a"
              (Lg_lalr.Tables.pp_conflict t) c));
     t)

let production_tag i =
  let g = Lg_support.Once.force cfg in
  g.Lg_grammar.Cfg.productions.(i).Lg_grammar.Cfg.tag
