(** The alternating-pass attribute evaluator.

    Interprets {!Plan} plans over intermediate {!Lg_apt.Aptfile} files,
    performing exactly the reads, writes, evaluations, copies and global
    save/restores that LINGUIST-86's generated Pascal would: the APT lives
    in the files, and only the spine of currently open nodes (one
    production-procedure frame per level) is resident — the property that
    let the original run 42 KB trees in 48 KB of memory.

    Pass [k] reads the file written by pass [k-1] {e backwards} (the
    alternating-file-order trick); with the [recursive_descent] strategy the
    first pass instead reads the parser's prefix-order file forwards. *)

type options = {
  backend : Lg_apt.Aptfile.backend;
  record_trace : bool;
      (** collect every rule evaluation for differential testing *)
  keep_files : bool;  (** retain intermediate files (benches measure them) *)
  interpretive : bool;
      (** evaluate semantic functions interpretively, Schulz-style: ignore
          the compiled expressions and re-resolve every attribute
          occurrence from the IR at each evaluation (the paper contrasts
          its generated in-line code against this). Requires a plan built
          without static subsumption.
          @raise Invalid_argument from {!run} otherwise *)
  tracer : Lg_support.Trace.t;
      (** telemetry sink (default {!Lg_support.Trace.null}); resolved
          against the ambient tracer, so a CLI-installed tracer sees
          evaluator runs without explicit threading. Each run contributes
          an ["engine.run"] span with one ["pass k"] child per pass
          carrying the pass's {!Lg_apt.Io_stats} counters as arguments *)
  trace_attrs : bool;
      (** record per-production attribute-evaluation counts on each pass
          span (the CLI's [--trace-attrs] debugging mode, à la
          Sasaki–Sassa); effective only when a tracer is enabled *)
  depth_budget : int;
      (** maximum simultaneously open (nested) nodes before the run fails
          with a typed {!Lg_apt.Apt_error.Resource_limit} diagnostic
          instead of a stack overflow; [0] disables the check *)
  node_budget : int;
      (** maximum APT records read across the whole run; [0] = unlimited *)
}

val default_depth_budget : int
(** 100_000 open nodes — generous for real trees, small enough that the
    budget fires long before the native stack would. *)

val default_options : options
(** [Mem] backend, no trace, files disposed as soon as consumed; the
    default depth budget, no node budget. *)

type pass_stats = {
  ps_pass : int;
  ps_io : Lg_apt.Io_stats.t;
  ps_rules : int;  (** rules evaluated *)
  ps_global_moves : int;  (** saves + sets + restores + captures *)
  ps_file_bytes : int;  (** size of the file this pass wrote *)
}

type run_stats = {
  rules_evaluated : int;
  global_moves : int;
  max_open_nodes : int;  (** deepest spine of simultaneously open nodes *)
  max_resident_slots : int;
      (** attribute instances resident at the worst moment (node slots +
          frame temporaries) *)
  total_io : Lg_apt.Io_stats.t;
  per_pass : pass_stats list;
  apt_total_bytes : int;  (** size of the largest intermediate file *)
}

type result = {
  outputs : (string * Lg_support.Value.t) list;
      (** the root's synthesized attributes — the translation result *)
  stats : run_stats;
  trace : (int * Lg_support.Value.t list) list;
      (** (rule id, values defined), evaluation order; empty unless
          [record_trace] *)
}

exception Evaluation_error of string
(** Input tree inconsistent with the grammar, or a corrupt stream. *)

val run : ?options:options -> Plan.t -> Lg_apt.Tree.t -> result
(** Linearize the tree (the parser's job), then run every pass.
    @raise Evaluation_error as above. *)

val initial_file :
  ?stats:Lg_apt.Io_stats.t ->
  Plan.t ->
  Lg_apt.Aptfile.backend ->
  Lg_apt.Tree.t ->
  Lg_apt.Aptfile.file
(** Just the parser-side linearization: postfix for [bottom_up], prefix
    for [recursive_descent], with pass-0 write sets. *)

val leaf_attr_values :
  Ir.t -> sym:int -> (string * Lg_support.Value.t) list -> Lg_support.Value.t array
(** Helper to build a terminal's intrinsic slots from name/value pairs.
    @raise Evaluation_error on an unknown attribute name. *)
