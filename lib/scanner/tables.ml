type t = {
  dfa : Lg_regex.Dfa.t;
  spec : Spec.t;
  rules : Spec.rule array;
  keyword_table : (string, string) Hashtbl.t;
  keyword_rule_set : (string, unit) Hashtbl.t;
}

let compile ?(trace = Lg_support.Trace.null) (spec : Spec.t) =
  let tr = Lg_support.Trace.resolve trace in
  Lg_support.Trace.span tr ~cat:"tables" "scanner.compile" @@ fun () ->
  let rules = Array.of_list spec.rules in
  let tagged =
    List.mapi (fun idx (rule : Spec.rule) -> (rule.pattern, idx)) spec.rules
  in
  let nfa =
    Lg_support.Trace.span tr ~cat:"tables" "scanner.nfa" (fun () ->
        Lg_regex.Nfa.build tagged)
  in
  let dfa0 =
    Lg_support.Trace.span tr ~cat:"tables" "scanner.determinize" (fun () ->
        Lg_regex.Dfa.of_nfa nfa)
  in
  let dfa =
    Lg_support.Trace.span tr ~cat:"tables" "scanner.minimize" (fun () ->
        Lg_regex.Dfa.minimize dfa0)
  in
  Lg_support.Trace.add_args tr
    [ ("dfa_table_bytes", Lg_support.Trace.Int (Lg_regex.Dfa.table_bytes dfa)) ];
  let m = Lg_support.Metrics.ambient () in
  if Lg_support.Metrics.enabled m then begin
    Lg_support.Metrics.incr m "scanner.compiles";
    Lg_support.Metrics.set_int m "scanner.dfa_table_bytes"
      (Lg_regex.Dfa.table_bytes dfa)
  end;
  let keyword_table = Hashtbl.create 32 in
  List.iter (fun (lexeme, kind) -> Hashtbl.replace keyword_table lexeme kind) spec.keywords;
  let keyword_rule_set = Hashtbl.create 4 in
  List.iter (fun name -> Hashtbl.replace keyword_rule_set name ()) spec.keyword_rules;
  { dfa; spec; rules; keyword_table; keyword_rule_set }

let dfa t = t.dfa
let spec t = t.spec
let rule_of_id t id = t.rules.(id)

let keyword_kind t ~rule_name ~lexeme =
  if Hashtbl.mem t.keyword_rule_set rule_name then
    match Hashtbl.find_opt t.keyword_table lexeme with
    | Some kind -> kind
    | None -> rule_name
  else rule_name

let size_bytes t =
  let keyword_bytes =
    Hashtbl.fold
      (fun lexeme kind acc -> acc + String.length lexeme + String.length kind + 4)
      t.keyword_table 0
  in
  Lg_regex.Dfa.table_bytes t.dfa + keyword_bytes
