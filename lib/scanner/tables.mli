(** Compiled scanner tables.

    This is the generator half of the paper's companion tool: the rules of a
    {!Spec.t} are combined into one NFA, determinized, minimized, and packed
    with per-rule dispatch information. The result is a pure data structure
    interpreted by {!Engine}. *)

type t

val compile : ?trace:Lg_support.Trace.t -> Spec.t -> t
(** [trace] (default {!Lg_support.Trace.null}, resolved against the
    ambient tracer) records ["scanner.nfa"] / ["scanner.determinize"] /
    ["scanner.minimize"] spans under ["scanner.compile"], with the packed
    table size as an argument. *)

val dfa : t -> Lg_regex.Dfa.t
val spec : t -> Spec.t
val rule_of_id : t -> int -> Spec.rule

val keyword_kind : t -> rule_name:string -> lexeme:string -> string
(** The token kind to emit for a match of [rule_name] on [lexeme], applying
    the keyword table when it applies. *)

val size_bytes : t -> int
(** Footprint of the generated tables (transition + accept + keyword
    entries), for the size-accounting experiments. *)
