open Lg_grammar

type assoc = Left | Right | Nonassoc
type action = Shift of int | Reduce of int | Accept | Error

type conflict = {
  state : int;
  terminal : int;
  shift : int option;
  reduces : int list;
  chosen : action;
  by_precedence : bool;
}

type t = {
  grammar : Cfg.t;
  lr0 : Lr0.t;
  actions : action array;  (** state * nterms + terminal *)
  gotos : int array;  (** state * nnts + nt; -1 = none *)
  nterms : int;
  nnts : int;
  conflicts : conflict list;
}

let prod_precedence prec_of_terminal (g : Cfg.t) prod =
  let p = g.productions.(prod) in
  Array.fold_left
    (fun acc sym ->
      match sym with Cfg.T t -> ( match prec_of_terminal t with Some _ as r -> r | None -> acc)
      | Cfg.NT _ -> acc)
    None p.rhs

let build ?(trace = Lg_support.Trace.null) ?(precedence = []) g =
  let tr = Lg_support.Trace.resolve trace in
  Lg_support.Trace.span tr ~cat:"tables" "lalr.build" @@ fun () ->
  let lr0 =
    Lg_support.Trace.span tr ~cat:"tables" "lalr.lr0" (fun () -> Lr0.build g)
  in
  let la =
    Lg_support.Trace.span tr ~cat:"tables" "lalr.lookahead" (fun () ->
        Lookahead.compute lr0)
  in
  Lg_support.Trace.span tr ~cat:"tables" "lalr.fill" @@ fun () ->
  let nterms = Cfg.terminal_count g in
  let nnts = Cfg.nonterminal_count g in
  let nstates = Lr0.state_count lr0 in
  let actions = Array.make (nstates * nterms) Error in
  let gotos = Array.make (nstates * nnts) (-1) in
  let prec_tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, level, assoc) ->
      match Cfg.find_terminal g name with
      | Some ti -> Hashtbl.replace prec_tbl ti (level, assoc)
      | None -> invalid_arg (Printf.sprintf "Tables.build: unknown terminal %S" name))
    precedence;
  let prec_of_terminal t = Hashtbl.find_opt prec_tbl t in
  let conflicts = ref [] in
  for s = 0 to nstates - 1 do
    (* Shifts and gotos. *)
    List.iter
      (fun (sym, dst) ->
        match sym with
        | Cfg.T t -> actions.((s * nterms) + t) <- Shift dst
        | Cfg.NT nt -> gotos.((s * nnts) + nt) <- dst)
      (Lr0.state lr0 s).Lr0.transitions;
    (* Reductions on their lookaheads. *)
    List.iter
      (fun prod ->
        List.iter
          (fun t ->
            let cell = (s * nterms) + t in
            let reduce_action =
              if prod = Lr0.augmented_prod lr0 then Accept else Reduce prod
            in
            match actions.(cell) with
            | Error -> actions.(cell) <- reduce_action
            | Shift dst -> (
                (* shift/reduce: try operator precedence. *)
                let rp =
                  if prod = Lr0.augmented_prod lr0 then None
                  else
                    Option.map fst (prod_precedence prec_of_terminal g prod)
                in
                let tp = prec_of_terminal t in
                match (rp, tp) with
                | Some rl, Some (tl, assoc) ->
                    let chosen =
                      if rl > tl then reduce_action
                      else if rl < tl then Shift dst
                      else
                        match assoc with
                        | Left -> reduce_action
                        | Right -> Shift dst
                        | Nonassoc -> Error
                    in
                    actions.(cell) <- chosen;
                    conflicts :=
                      {
                        state = s;
                        terminal = t;
                        shift = Some dst;
                        reduces = [ prod ];
                        chosen;
                        by_precedence = true;
                      }
                      :: !conflicts
                | _ ->
                    (* Unresolved: default to shift, like yacc. *)
                    conflicts :=
                      {
                        state = s;
                        terminal = t;
                        shift = Some dst;
                        reduces = [ prod ];
                        chosen = Shift dst;
                        by_precedence = false;
                      }
                      :: !conflicts)
            | Reduce other ->
                (* reduce/reduce: lower production index wins. *)
                let winner = min prod other and loser = max prod other in
                actions.(cell) <- Reduce winner;
                conflicts :=
                  {
                    state = s;
                    terminal = t;
                    shift = None;
                    reduces = [ winner; loser ];
                    chosen = Reduce winner;
                    by_precedence = false;
                  }
                  :: !conflicts
            | Accept ->
                conflicts :=
                  {
                    state = s;
                    terminal = t;
                    shift = None;
                    reduces = [ prod ];
                    chosen = Accept;
                    by_precedence = false;
                  }
                  :: !conflicts)
          (Lookahead.lookaheads la ~state:s ~prod))
      (Lr0.reductions lr0 s)
  done;
  Lg_support.Trace.add_args tr
    [
      ("states", Lg_support.Trace.Int nstates);
      ("conflicts", Lg_support.Trace.Int (List.length !conflicts));
    ];
  let m = Lg_support.Metrics.ambient () in
  if Lg_support.Metrics.enabled m then begin
    Lg_support.Metrics.incr m "lalr.builds";
    Lg_support.Metrics.set_int m "lalr.states" nstates;
    Lg_support.Metrics.set_int m "lalr.conflicts" (List.length !conflicts);
    Lg_support.Metrics.set_int m "lalr.table_bytes"
      (2 * (Array.length actions + Array.length gotos))
  end;
  { grammar = g; lr0; actions; gotos; nterms; nnts; conflicts = List.rev !conflicts }

let grammar t = t.grammar
let automaton t = t.lr0
let action t ~state ~terminal = t.actions.((state * t.nterms) + terminal)

let goto_nt t ~state ~nt =
  match t.gotos.((state * t.nnts) + nt) with -1 -> None | s -> Some s

let start_state _ = 0
let conflicts t = t.conflicts
let unresolved_conflicts t = List.filter (fun c -> not c.by_precedence) t.conflicts

let expected_terminals t ~state =
  List.filter
    (fun term ->
      match action t ~state ~terminal:term with
      | Error -> false
      | Shift _ | Reduce _ | Accept -> true)
    (List.init t.nterms Fun.id)

let state_count t = Lr0.state_count t.lr0
let table_bytes t = 2 * (Array.length t.actions + Array.length t.gotos)

let pp_conflict t ppf c =
  let kind = match c.shift with Some _ -> "shift/reduce" | None -> "reduce/reduce" in
  Format.fprintf ppf "%s conflict in state %d on %s (%s)" kind c.state
    (Cfg.terminal_name t.grammar c.terminal)
    (if c.by_precedence then "resolved by precedence" else "unresolved")
