(* One shared JSON tree for everything the system writes or reads as
   JSON: trace exports, counter dumps, bench tables, metrics snapshots,
   run manifests, and the test suite's validators. Zero dependencies;
   numbers are floats, as in JSON itself. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* ---------- writing ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number f =
  (* JSON has no non-finite numbers; clamp so a Num leaf re-parses as a
     number (NaN -> 0, +/-inf -> +/-max_float) instead of becoming null *)
  let f =
    if Float.is_nan f then 0.0
    else if f = Float.infinity then Float.max_float
    else if f = Float.neg_infinity then -.Float.max_float
    else f
  in
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest decimal that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_buffer ?(pretty = false) b v =
  let add = Buffer.add_string b in
  let indent depth = add (String.make (2 * depth) ' ') in
  let rec go depth v =
    match v with
    | Null -> add "null"
    | Bool true -> add "true"
    | Bool false -> add "false"
    | Num f -> add (number f)
    | Str s ->
        add "\"";
        add (escape s);
        add "\""
    | Arr [] -> add "[]"
    | Arr l ->
        add "[";
        List.iteri
          (fun i x ->
            if i > 0 then add ",";
            if pretty then begin
              add "\n";
              indent (depth + 1)
            end;
            go (depth + 1) x)
          l;
        if pretty then begin
          add "\n";
          indent depth
        end;
        add "]"
    | Obj [] -> add "{}"
    | Obj fields ->
        add "{";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then add ",";
            if pretty then begin
              add "\n";
              indent (depth + 1)
            end;
            add "\"";
            add (escape k);
            add (if pretty then "\": " else "\":");
            go (depth + 1) x)
          fields;
        if pretty then begin
          add "\n";
          indent depth
        end;
        add "}"
  in
  go 0 v

let to_string ?pretty v =
  let b = Buffer.create 256 in
  to_buffer ?pretty b v;
  Buffer.contents b

(* ---------- reading ---------- *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at offset %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* producers only emit \u for ASCII control characters *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              go ()
          | Some c -> advance (); Buffer.add_char b c; go ()
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member_exn key j =
  match member key j with
  | Some v -> v
  | None -> failwith (Printf.sprintf "json: missing member %S" key)

let to_list = function Arr l -> l | _ -> failwith "json: expected array"
let to_num = function Num f -> f | _ -> failwith "json: expected number"
let to_int j = int_of_float (to_num j)
let to_str = function Str s -> s | _ -> failwith "json: expected string"
