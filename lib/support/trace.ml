type arg = Int of int | Float of float | Str of string

type span = {
  sp_name : string;
  sp_cat : string;
  sp_depth : int;
  sp_start : float;
  sp_dur : float;
  sp_args : (string * arg) list;
}

type open_span = {
  o_name : string;
  o_cat : string;
  o_depth : int;
  o_start : float;
  mutable o_args : (string * arg) list;  (* reversed *)
}

type t = {
  on : bool;
  clock : unit -> float;
  epoch : float;
  lock : Mutex.t;
  mutable stack : open_span list;  (* innermost first *)
  mutable closed : span list;  (* completion order, reversed *)
  mutable n_closed : int;
  tallies : (string, int ref) Hashtbl.t;
}

let null =
  {
    on = false;
    clock = (fun () -> 0.0);
    epoch = 0.0;
    lock = Mutex.create ();
    stack = [];
    closed = [];
    n_closed = 0;
    tallies = Hashtbl.create 1;
  }

let create ?(clock = Unix.gettimeofday) () =
  {
    on = true;
    clock;
    epoch = clock ();
    lock = Mutex.create ();
    stack = [];
    closed = [];
    n_closed = 0;
    tallies = Hashtbl.create 16;
  }

let enabled t = t.on
let now t = t.clock () -. t.epoch

(* Every enabled-path mutation and snapshot runs under the tracer's
   mutex; the disabled path ([null]) stays one field check. The span
   stack remains a single well-nested story — concurrent writers should
   record into private tracers and {!absorb} them — but counters and
   absorption are meaningful (and safe) from any number of domains. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let begin_span t ?(cat = "") name =
  if t.on then
    locked t @@ fun () ->
    t.stack <-
      {
        o_name = name;
        o_cat = cat;
        o_depth = List.length t.stack;
        o_start = now t;
        o_args = [];
      }
      :: t.stack

let end_span t ?(args = []) () =
  if t.on then
    locked t @@ fun () ->
    match t.stack with
    | [] -> ()
    | o :: rest ->
        t.stack <- rest;
        t.closed <-
          {
            sp_name = o.o_name;
            sp_cat = o.o_cat;
            sp_depth = o.o_depth;
            sp_start = o.o_start;
            sp_dur = now t -. o.o_start;
            sp_args = List.rev_append o.o_args args;
          }
          :: t.closed;
        t.n_closed <- t.n_closed + 1

let span t ?cat ?(args = []) name f =
  if not t.on then f ()
  else begin
    begin_span t ?cat name;
    Fun.protect ~finally:(fun () -> end_span t ~args ()) f
  end

let add_args t args =
  if t.on then
    locked t @@ fun () ->
    match t.stack with
    | [] -> ()
    | o :: _ -> o.o_args <- List.rev_append args o.o_args

let open_depth t = locked t @@ fun () -> List.length t.stack

let counter t name n =
  if t.on then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.tallies name with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace t.tallies name (ref n)

let counters t =
  locked t @@ fun () ->
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.tallies []
  |> List.sort compare

let spans t = locked t @@ fun () -> List.rev t.closed
let span_count t = locked t @@ fun () -> t.n_closed
let elapsed t = now t

(* Splice a finished private tracer into [t]: its closed spans reappear
   shifted to [t]'s epoch and nested under [t]'s currently open spans
   (completion order is preserved, so the forest reconstruction in the
   summary exporter adopts them as children of whichever span of [t]
   closes next). Counters accumulate by name. *)
let absorb t child =
  if t.on && child.on then begin
    let child_spans = spans child in
    let child_counters = counters child in
    let shift = child.epoch -. t.epoch in
    (locked t @@ fun () ->
     let base = List.length t.stack in
     List.iter
       (fun sp ->
         t.closed <-
           { sp with sp_depth = sp.sp_depth + base; sp_start = sp.sp_start +. shift }
           :: t.closed;
         t.n_closed <- t.n_closed + 1)
       child_spans);
    List.iter (fun (name, n) -> counter t name n) child_counters
  end

(* ---------- ambient tracer ---------- *)

(* Domain-local: each domain starts with the null tracer and installs
   its own. Pool workers install a private per-job tracer and the parent
   absorbs it, so one domain's install never clobbers another's. *)
let ambient_state = Domain.DLS.new_key (fun () -> (null, false))

let install ?(attr_counts = false) t =
  Domain.DLS.set ambient_state (t, attr_counts)

let ambient () = fst (Domain.DLS.get ambient_state)
let ambient_attr_counts () = snd (Domain.DLS.get ambient_state)
let resolve t = if t.on then t else ambient ()

(* ---------- summary exporter ---------- *)

(* Rebuild the forest from the completion-order list: when a span at depth
   d closes, every not-yet-claimed span at depth d+1 is one of its
   children (children always complete before their parent). *)
type tree = { node : span; children : tree list }

let forest_of_spans spans =
  let pending = Hashtbl.create 8 in
  let take depth =
    match Hashtbl.find_opt pending depth with
    | Some l ->
        Hashtbl.remove pending depth;
        List.rev l
    | None -> []
  in
  let put depth tr =
    Hashtbl.replace pending depth
      (tr :: Option.value ~default:[] (Hashtbl.find_opt pending depth))
  in
  List.iter
    (fun sp -> put sp.sp_depth { node = sp; children = take (sp.sp_depth + 1) })
    spans;
  take 0

(* Merge same-named siblings: count, summed duration, summed Int args. *)
type agg = {
  ag_name : string;
  mutable ag_count : int;
  mutable ag_dur : float;
  mutable ag_args : (string * int) list;
  mutable ag_children : agg list;  (* reversed while building *)
}

let rec aggregate trees =
  let out = ref [] in
  List.iter
    (fun { node; children } ->
      let a =
        match
          List.find_opt (fun a -> String.equal a.ag_name node.sp_name) !out
        with
        | Some a -> a
        | None ->
            let a =
              {
                ag_name = node.sp_name;
                ag_count = 0;
                ag_dur = 0.0;
                ag_args = [];
                ag_children = [];
              }
            in
            out := a :: !out;
            a
      in
      a.ag_count <- a.ag_count + 1;
      a.ag_dur <- a.ag_dur +. node.sp_dur;
      List.iter
        (fun (k, v) ->
          match v with
          | Int n ->
              a.ag_args <-
                (match List.assoc_opt k a.ag_args with
                | Some m -> (k, m + n) :: List.remove_assoc k a.ag_args
                | None -> (k, n) :: a.ag_args)
          | Float _ | Str _ -> ())
        node.sp_args;
      a.ag_children <- aggregate children @ a.ag_children)
    trees;
  List.rev !out

let rec merge_aggs l =
  (* children were appended per-occurrence; merge them by name too *)
  let merged = ref [] in
  List.iter
    (fun a ->
      match
        List.find_opt (fun b -> String.equal b.ag_name a.ag_name) !merged
      with
      | Some b ->
          b.ag_count <- b.ag_count + a.ag_count;
          b.ag_dur <- b.ag_dur +. a.ag_dur;
          List.iter
            (fun (k, n) ->
              b.ag_args <-
                (match List.assoc_opt k b.ag_args with
                | Some m -> (k, m + n) :: List.remove_assoc k b.ag_args
                | None -> (k, n) :: b.ag_args))
            a.ag_args;
          b.ag_children <- b.ag_children @ a.ag_children
      | None -> merged := a :: !merged)
    l;
  List.rev_map
    (fun a ->
      a.ag_children <- merge_aggs (List.rev a.ag_children);
      a)
    !merged
  |> List.rev

let pp_summary ppf t =
  let rec pp_agg indent a =
    Format.fprintf ppf "%s%-*s %4dx %10.6f s" indent
      (max 1 (32 - String.length indent))
      a.ag_name a.ag_count a.ag_dur;
    (match List.sort compare a.ag_args with
    | [] -> ()
    | args ->
        Format.fprintf ppf "  [%s]"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) args)));
    Format.fprintf ppf "@.";
    List.iter (pp_agg (indent ^ "  ")) a.ag_children
  in
  Format.fprintf ppf "trace summary (%d spans, %.6f s)@." t.n_closed
    (elapsed t);
  List.iter (pp_agg "  ") (merge_aggs (aggregate (forest_of_spans (spans t))));
  match counters t with
  | [] -> ()
  | cs ->
      Format.fprintf ppf "  counters:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "    %-30s %12d@." k v) cs

(* ---------- Chrome trace_event exporter ---------- *)

(* String escaping and value formatting are Json_out's; only the
   line-per-event layout (friendly to streaming and diffing) is local. *)
let json_escape = Json_out.escape

let json_of_args args =
  Json_out.to_string
    (Json_out.Obj
       (List.map
          (fun (k, v) ->
            ( k,
              match v with
              | Int n -> Json_out.int n
              | Float f -> Json_out.Num f
              | Str s -> Json_out.Str s ))
          args))

let us seconds = seconds *. 1e6

let to_chrome_json ?(process_name = "linguist") t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"%s\"}}"
       (json_escape process_name));
  List.iter
    (fun sp ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":1,\"args\":%s}"
           (json_escape sp.sp_name)
           (json_escape (if String.equal sp.sp_cat "" then "span" else sp.sp_cat))
           (us sp.sp_start) (us sp.sp_dur)
           (json_of_args sp.sp_args)))
    (spans t);
  let t_end = us (elapsed t) in
  List.iter
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"args\":{\"%s\":%d}}"
           (json_escape name) t_end (json_escape name) v))
    (counters t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_chrome ?process_name t ~path =
  let oc = open_out path in
  output_string oc (to_chrome_json ?process_name t);
  close_out oc
