type name = int

(* A translator's name table is shared by every evaluation run against
   that translator; under the batch-evaluation pool those runs happen on
   several domains at once, so the table guards its state with a mutex.
   Operations are short (one hashtable probe, occasionally an array
   grow), so the uncontended cost is a few nanoseconds per intern —
   invisible next to the scanning that produces the lexemes. *)
type t = {
  lock : Mutex.t;
  by_text : (string, name) Hashtbl.t;
  mutable texts : string array;
  mutable next : int;
  mutable bytes : int;
}

let create ?(initial_size = 64) () =
  {
    lock = Mutex.create ();
    by_text = Hashtbl.create initial_size;
    texts = Array.make (max 1 initial_size) "";
    next = 0;
    bytes = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let grow t =
  let cap = Array.length t.texts in
  if t.next >= cap then begin
    let texts = Array.make (2 * cap) "" in
    Array.blit t.texts 0 texts 0 cap;
    t.texts <- texts
  end

let intern t s =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.by_text s with
  | Some n -> n
  | None ->
      let n = t.next in
      grow t;
      t.texts.(n) <- s;
      t.next <- n + 1;
      t.bytes <- t.bytes + String.length s;
      Hashtbl.add t.by_text s n;
      n

let find_opt t s = locked t @@ fun () -> Hashtbl.find_opt t.by_text s
let mem t s = locked t @@ fun () -> Hashtbl.mem t.by_text s

let text t n =
  locked t @@ fun () ->
  if n < 0 || n >= t.next then invalid_arg "Interner.text: foreign name";
  t.texts.(n)

let count t = locked t @@ fun () -> t.next

let iter t f =
  (* snapshot under the lock, call back outside it, so [f] may intern *)
  let n, texts = locked t (fun () -> (t.next, t.texts)) in
  for i = 0 to n - 1 do
    f i texts.(i)
  done

let footprint_bytes t =
  locked t @@ fun () -> t.bytes + (t.next * (Sys.word_size / 8))
