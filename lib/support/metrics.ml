(* The pipeline-wide metrics registry: counters, gauges and fixed-bucket
   histograms behind one name table. See the interface for the design
   notes; the implementation mirrors Trace — a disabled registry is one
   field check per operation, and an ambient registry serves call sites
   that predate explicit threading.

   A registry may be shared across domains (the batch-evaluation worker
   pool publishes server.* metrics from every worker into one registry),
   so every mutation and every snapshot runs under the registry's mutex.
   The disabled path takes no lock — [null] stays one field check — and
   the ambient registry is domain-local state, so a worker installing its
   own registry never clobbers another domain's. *)

type histogram = {
  h_buckets : float array;
  h_counts : int array;
  h_sum : float;
  h_count : int;
}

type value = Counter of int | Gauge of float | Histogram of histogram

(* live cells are mutable so the hot paths never reallocate *)
type hist_cell = {
  buckets : float array;
  counts : int array;  (* one per bucket + overflow *)
  mutable sum : float;
  mutable count : int;
}

(* a windowed histogram keeps two fixed-width frames (current and
   previous) and rotates on the registry clock; readers see the two
   frames merged, so a snapshot always covers between one and two
   windows of recent observations and older ones are forgotten *)
type win_cell = {
  w_buckets : float array;
  w_window : float;  (* frame width, seconds *)
  mutable w_start : float;  (* current frame's start *)
  w_cur : int array;
  mutable w_cur_sum : float;
  mutable w_cur_count : int;
  w_prev : int array;
  mutable w_prev_sum : float;
  mutable w_prev_count : int;
}

type cell = C of int ref | G of float ref | H of hist_cell | W of win_cell

type t = {
  on : bool;
  lock : Mutex.t;
  cells : (string, cell) Hashtbl.t;
  clock : unit -> float;  (* drives windowed-histogram rotation only *)
}

let null =
  {
    on = false;
    lock = Mutex.create ();
    cells = Hashtbl.create 1;
    clock = (fun () -> 0.0);
  }

let create ?(clock = Unix.gettimeofday) () =
  { on = true; lock = Mutex.create (); cells = Hashtbl.create 32; clock }

let enabled t = t.on

(* Every enabled-path operation runs under the lock; [kind_error] raises
   from inside [locked], so the mutex is released on that path too. *)
let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let default_buckets =
  [ 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0; 262144.0; 1048576.0 ]

let latency_buckets =
  [
    0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5;
    5.0; 10.0; 30.0; 60.0;
  ]

let kind_error name ~want ~got =
  invalid_arg
    (Printf.sprintf "Metrics: %S is a %s, used as a %s" name got want)

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"
  | W _ -> "windowed histogram"

let incr t ?(by = 1) name =
  if t.on then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.cells name with
    | Some (C r) -> r := !r + by
    | Some c -> kind_error name ~want:"counter" ~got:(kind_name c)
    | None -> Hashtbl.replace t.cells name (C (ref by))

let set t name v =
  if t.on then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.cells name with
    | Some (G r) -> r := v
    | Some c -> kind_error name ~want:"gauge" ~got:(kind_name c)
    | None -> Hashtbl.replace t.cells name (G (ref v))

let set_int t name v = set t name (float_of_int v)

let set_max t name v =
  if t.on then
    locked t @@ fun () ->
    match Hashtbl.find_opt t.cells name with
    | Some (G r) -> if v > !r then r := v
    | Some c -> kind_error name ~want:"gauge" ~got:(kind_name c)
    | None -> Hashtbl.replace t.cells name (G (ref v))

let bucket_index buckets v =
  (* first bucket whose upper bound admits v; length buckets = overflow *)
  let n = Array.length buckets in
  let i = ref 0 in
  while !i < n && v > buckets.(!i) do
    i := !i + 1
  done;
  !i

let observe t ?(buckets = default_buckets) name v =
  if t.on then
    locked t @@ fun () ->
    let h =
      match Hashtbl.find_opt t.cells name with
      | Some (H h) -> h
      | Some c -> kind_error name ~want:"histogram" ~got:(kind_name c)
      | None ->
          let sorted = List.sort_uniq compare buckets in
          if sorted = [] then
            invalid_arg (Printf.sprintf "Metrics: %S: empty bucket list" name);
          let buckets = Array.of_list sorted in
          let h =
            {
              buckets;
              counts = Array.make (Array.length buckets + 1) 0;
              sum = 0.0;
              count = 0;
            }
          in
          Hashtbl.replace t.cells name (H h);
          h
    in
    let i = bucket_index h.buckets v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. v;
    h.count <- h.count + 1

(* under the lock: advance a windowed cell's frames to cover [now].
   One frame behind → current becomes previous; two or more behind →
   both frames are stale and clear. The new frame start is aligned to
   the window grid so idle periods don't drift the boundaries. *)
let rotate_window now w =
  let behind = now -. w.w_start in
  if behind >= w.w_window then begin
    let n = Array.length w.w_cur in
    if behind >= 2.0 *. w.w_window then begin
      Array.fill w.w_cur 0 n 0;
      Array.fill w.w_prev 0 n 0;
      w.w_cur_sum <- 0.0;
      w.w_cur_count <- 0;
      w.w_prev_sum <- 0.0;
      w.w_prev_count <- 0;
      w.w_start <- now
    end
    else begin
      Array.blit w.w_cur 0 w.w_prev 0 n;
      Array.fill w.w_cur 0 n 0;
      w.w_prev_sum <- w.w_cur_sum;
      w.w_prev_count <- w.w_cur_count;
      w.w_cur_sum <- 0.0;
      w.w_cur_count <- 0;
      w.w_start <- w.w_start +. w.w_window
    end
  end

let observe_window t ?(buckets = default_buckets) ~window name v =
  if t.on then
    locked t @@ fun () ->
    let w =
      match Hashtbl.find_opt t.cells name with
      | Some (W w) -> w
      | Some c -> kind_error name ~want:"windowed histogram" ~got:(kind_name c)
      | None ->
          let sorted = List.sort_uniq compare buckets in
          if sorted = [] then
            invalid_arg (Printf.sprintf "Metrics: %S: empty bucket list" name);
          let buckets = Array.of_list sorted in
          let n = Array.length buckets + 1 in
          let w =
            {
              w_buckets = buckets;
              w_window = Float.max 0.001 window;
              w_start = t.clock ();
              w_cur = Array.make n 0;
              w_cur_sum = 0.0;
              w_cur_count = 0;
              w_prev = Array.make n 0;
              w_prev_sum = 0.0;
              w_prev_count = 0;
            }
          in
          Hashtbl.replace t.cells name (W w);
          w
    in
    rotate_window (t.clock ()) w;
    let i = bucket_index w.w_buckets v in
    w.w_cur.(i) <- w.w_cur.(i) + 1;
    w.w_cur_sum <- w.w_cur_sum +. v;
    w.w_cur_count <- w.w_cur_count + 1

let freeze now = function
  | C r -> Counter !r
  | G r -> Gauge !r
  | H h ->
      Histogram
        {
          h_buckets = Array.copy h.buckets;
          h_counts = Array.copy h.counts;
          h_sum = h.sum;
          h_count = h.count;
        }
  | W w ->
      (* rotate first so a quiet histogram reads empty once its frames
         age out, then export the two frames merged as a plain
         histogram — every reader (percentiles, JSON, Prometheus)
         works on it unchanged *)
      rotate_window now w;
      Histogram
        {
          h_buckets = Array.copy w.w_buckets;
          h_counts = Array.init (Array.length w.w_cur) (fun i ->
              w.w_cur.(i) + w.w_prev.(i));
          h_sum = w.w_cur_sum +. w.w_prev_sum;
          h_count = w.w_cur_count + w.w_prev_count;
        }

let dump t =
  locked t @@ fun () ->
  let now = t.clock () in
  Hashtbl.fold (fun name c acc -> (name, freeze now c) :: acc) t.cells []
  |> List.sort compare

let find t name =
  locked t @@ fun () ->
  Option.map (freeze (t.clock ())) (Hashtbl.find_opt t.cells name)

let reset t = locked t @@ fun () -> Hashtbl.reset t.cells

(* Prometheus-style quantile estimation over the cumulative bucket
   counts: find the bucket the target rank lands in and interpolate
   linearly inside it. A rank that lands in the +Inf overflow bucket
   cannot be resolved past the largest finite bound, so that bound is
   the answer (the same convention as histogram_quantile). *)
let percentile (h : histogram) q =
  if h.h_count = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.h_count in
    let nb = Array.length h.h_buckets in
    let rec go i cum =
      if i >= nb then Some h.h_buckets.(nb - 1)
      else
        let cum' = cum + h.h_counts.(i) in
        if h.h_counts.(i) > 0 && float_of_int cum' >= target then
          let lower = if i = 0 then 0.0 else h.h_buckets.(i - 1) in
          let upper = h.h_buckets.(i) in
          let within =
            (target -. float_of_int cum) /. float_of_int h.h_counts.(i)
          in
          Some (lower +. ((upper -. lower) *. Float.max 0.0 within))
        else go (i + 1) cum'
    in
    go 0 0
  end

(* the percentiles both exporters derive: the SLO points *)
let slo_points = [ ("p50", 0.5); ("p95", 0.95); ("p99", 0.99) ]

(* ---------- ambient registry ---------- *)

(* Domain-local: each domain gets the null registry until it installs one.
   Worker domains of the batch pool install the shared (locked) registry
   explicitly; a single-threaded CLI run behaves exactly as before. *)
let ambient_registry = Domain.DLS.new_key (fun () -> null)
let install t = Domain.DLS.set ambient_registry t
let ambient () = Domain.DLS.get ambient_registry
let resolve t = if t.on then t else ambient ()

(* ---------- exporters ---------- *)

let to_json t =
  Json_out.Obj
    (List.map
       (fun (name, v) ->
         ( name,
           match v with
           | Counter n -> Json_out.int n
           | Gauge f -> Json_out.Num f
           | Histogram h ->
               Json_out.Obj
                 ([
                    ( "buckets",
                      Json_out.Arr
                        (Array.to_list (Array.map (fun b -> Json_out.Num b) h.h_buckets))
                    );
                    ( "counts",
                      Json_out.Arr
                        (Array.to_list (Array.map Json_out.int h.h_counts)) );
                    ("sum", Json_out.Num h.h_sum);
                    ("count", Json_out.int h.h_count);
                  ]
                 @ List.filter_map
                     (fun (key, q) ->
                       Option.map
                         (fun v -> (key, Json_out.Num v))
                         (percentile h q))
                     slo_points) ))
       (dump t))

let prom_name name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let pp_prometheus ppf t =
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Counter c ->
          Format.fprintf ppf "# TYPE %s counter@.%s %d@." n n c
      | Gauge g ->
          Format.fprintf ppf "# TYPE %s gauge@.%s %s@." n n (prom_float g)
      | Histogram h ->
          Format.fprintf ppf "# TYPE %s histogram@." n;
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + h.h_counts.(i);
              Format.fprintf ppf "%s_bucket{le=\"%s\"} %d@." n (prom_float b)
                !cum)
            h.h_buckets;
          Format.fprintf ppf "%s_bucket{le=\"+Inf\"} %d@." n h.h_count;
          Format.fprintf ppf "%s_sum %s@." n (prom_float h.h_sum);
          Format.fprintf ppf "%s_count %d@." n h.h_count;
          (* derived SLO quantiles, summary-style, next to the buckets
             they came from — scrape-side percentile math optional *)
          List.iter
            (fun (_, q) ->
              match percentile h q with
              | Some v ->
                  Format.fprintf ppf "%s{quantile=\"%s\"} %s@." n
                    (prom_float q) (prom_float v)
              | None -> ())
            slo_points)
    (dump t)
