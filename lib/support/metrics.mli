(** A zero-dependency metrics registry: named counters, gauges and
    fixed-bucket histograms for the whole pipeline.

    Where {!Trace} answers "where did the time go", this registry
    answers "how much work was done": APT bytes and pages moved, record
    sizes, buffer-pool residency, retry counts, per-pass rule-evaluation
    totals, table sizes. The CLI snapshots it into every run manifest
    ([--report]) and the bench regression gate diffs those snapshots
    across commits — the paper's §IV/§V accounting claims, kept honest
    by CI.

    Mirrors {!Trace}'s design: a disabled registry ({!null}) reduces
    every operation to one field check, and an {e ambient} registry lets
    deep call sites (the evaluator, the store stack, the table builders)
    report without explicit threading. Metric names are dotted
    lower-case paths (["apt.bytes_read"], ["engine.pass_rules"]).

    Registries are safe to share across domains: every mutation and
    snapshot of an enabled registry runs under an internal mutex (the
    batch-evaluation worker pool publishes [server.*] metrics from every
    worker into one registry). The ambient registry is {e domain-local}
    — {!install} affects only the calling domain, so each pool worker
    can adopt the shared registry without clobbering its siblings.

    A metric's kind is fixed by its first use; re-using a name at a
    different kind raises [Invalid_argument] — that is a programming
    error, not an operational condition. *)

type t

val null : t
(** The disabled registry: every operation is a near-no-op. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled registry. [clock] (default [Unix.gettimeofday])
    drives {e windowed} histogram rotation only — tests inject a fake
    clock to step windows deterministically. *)

val enabled : t -> bool

(** {1 Recording} *)

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to a counter. *)

val set : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val set_int : t -> string -> int -> unit

val set_max : t -> string -> float -> unit
(** Raise a gauge to [v] if [v] exceeds its current value (create it at
    [v] otherwise) — a high-water mark that is race-free under
    concurrent publication, unlike a read-modify-[set] at the call
    site. *)

val observe : t -> ?buckets:float list -> string -> float -> unit
(** Record one observation into a histogram. [buckets] (sorted upper
    bounds; default {!default_buckets}) is fixed by the histogram's
    first observation and ignored afterwards. Every histogram has an
    implicit [+Inf] overflow bucket, so bucket counts always sum to the
    observation count. *)

val observe_window : t -> ?buckets:float list -> window:float -> string -> float -> unit
(** Record one observation into a {e windowed} histogram: like
    {!observe}, but the counts cover only recent observations. The cell
    keeps two [window]-second frames (current and previous) and rotates
    them on the registry clock, so any snapshot reflects between one
    and two windows of history and everything older is forgotten — the
    "current latency" view that [linguist top] renders, where the
    process-lifetime SLO histograms never forget a cold start.
    [buckets] and [window] are fixed by the first observation. Exported
    ({!dump}/{!find}/{!to_json}/{!pp_prometheus}) as a plain
    {!Histogram} of the merged frames; a name is either windowed or
    plain, never both. *)

val default_buckets : float list
(** Powers of 4 from 1 to 4{^10} — a decade-spanning default for byte
    and count distributions. *)

val latency_buckets : float list
(** Sub-millisecond to a minute (0.5 ms … 60 s) — the bucket ladder for
    seconds-scale latency histograms ([server.queue_wait_seconds],
    [server.service_seconds]), dense where SLOs live. *)

(** {1 Reading} *)

type histogram = {
  h_buckets : float array;  (** upper bounds, ascending; no [+Inf] entry *)
  h_counts : int array;  (** length [Array.length h_buckets + 1]; last = overflow *)
  h_sum : float;
  h_count : int;
}

type value = Counter of int | Gauge of float | Histogram of histogram

val dump : t -> (string * value) list
(** Every metric, sorted by name. Histogram arrays are copies. *)

val percentile : histogram -> float -> float option
(** [percentile h q] estimates the [q]-quantile ([q] clamped to [0,1])
    from the fixed buckets: the bucket holding the target rank is found
    on the cumulative counts and the value interpolated linearly inside
    it (a lower bound of 0 is assumed for the first bucket). A rank
    landing in the [+Inf] overflow bucket answers the largest finite
    bucket bound — the histogram cannot resolve past it. [None] when the
    histogram is empty. *)

val find : t -> string -> value option
val reset : t -> unit

(** {1 The ambient registry}

    The CLI and the bench harness install one registry per run; deep
    call sites fall back to it. Defaults to {!null}: nothing is recorded
    unless installed. The binding is per-domain: a freshly spawned
    domain starts at {!null} and must {!install} its own (possibly
    shared) registry. *)

val install : t -> unit
val ambient : unit -> t

val resolve : t -> t
(** [resolve t] is [t] when enabled, else the ambient registry. *)

(** {1 Exporters} *)

val to_json : t -> Json_out.t
(** One object, keyed by metric name. Counters and gauges are numbers;
    a histogram is [{"buckets": [...], "counts": [...], "sum": _,
    "count": _, "p50": _, "p95": _, "p99": _}] where [counts] has one
    entry per bucket plus the overflow, summing to [count], and the
    [pNN] members are {!percentile}-derived SLO points (omitted while
    the histogram is empty). *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition (version 0.0.4): [# TYPE] lines, dots in
    metric names rewritten to underscores, histograms as cumulative
    [_bucket{le="..."}] series with [_sum]/[_count], followed by
    summary-style [{quantile="0.5"|"0.95"|"0.99"}] points derived with
    {!percentile}. *)
