(** Domain-safe one-shot initialization: [lazy] for shared globals.

    OCaml's [Lazy.t] is not safe to force from several domains at once —
    the loser of the race gets [CamlinternalLazy.Undefined]. The
    module-level memoized tables this system keeps (the CRC32 table, the
    AG language's scanner and LALR tables) are exactly the values every
    batch-pool worker touches on its first job, so they go through this
    cell instead: the first forcer runs the thunk under a mutex, everyone
    else blocks until the value is ready, and afterwards reads are a
    single atomic load.

    A thunk that raises leaves the cell unset — the next {!force} retries
    (matching [Lazy] on reraise, minus the poisoning). *)

type 'a t

val make : (unit -> 'a) -> 'a t
val force : 'a t -> 'a
