(** Pipeline-wide tracing and profiling.

    A zero-dependency telemetry layer (stdlib + [Unix.gettimeofday] only)
    with hierarchical spans, typed counters, and two exporters: a human
    summary ({!pp_summary}) and Chrome [trace_event] JSON
    ({!to_chrome_json}) that renders in [chrome://tracing] and Perfetto.

    The span hierarchy mirrors the system's phase structure: the driver's
    overlays (scan/parse, semantic analysis, evaluability, planning,
    listing, per-pass codegen), the evaluator's alternating passes — each
    carrying its {!Io_stats} as span arguments — and the LALR/scanner
    table constructions. See [docs/OBSERVABILITY.md].

    A disabled tracer ({!null}) reduces every operation to a single field
    check, so instrumented code paths cost nothing when tracing is off.

    Enabled tracers guard their state with an internal mutex, so
    counters and {!absorb} are safe from any number of domains. The span
    {e stack}, though, tells one well-nested story: concurrent workers
    should record spans into private per-job tracers and let the parent
    {!absorb} them when the job completes (the batch-evaluation pool
    does exactly this). The ambient tracer is domain-local — {!install}
    affects only the calling domain. *)

type arg = Int of int | Float of float | Str of string
(** A typed span argument / counter value. *)

type span = {
  sp_name : string;
  sp_cat : string;  (** category: ["overlay"], ["pass"], ["tables"], … *)
  sp_depth : int;  (** number of enclosing spans when it began *)
  sp_start : float;  (** seconds since the tracer's epoch *)
  sp_dur : float;  (** seconds *)
  sp_args : (string * arg) list;  (** attached counters, in attach order *)
}

type t

val null : t
(** The disabled tracer: every operation is a near-no-op. *)

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled tracer. [clock] (default [Unix.gettimeofday]) is read
    once at creation for the epoch and once per span begin/end; inject a
    deterministic counter for reproducible tests. *)

val enabled : t -> bool

(** {1 Spans} *)

val span : t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a span. The span is closed even when
    [f] raises, so traces stay balanced across error paths. *)

val begin_span : t -> ?cat:string -> string -> unit
(** Open a span manually; prefer {!span} where scoping allows. *)

val end_span : t -> ?args:(string * arg) list -> unit -> unit
(** Close the innermost open span, attaching [args]. No-op if nothing is
    open (a hardening choice: unbalanced instrumentation must not crash
    the pipeline it observes). *)

val add_args : t -> (string * arg) list -> unit
(** Attach arguments to the innermost open span; no-op when none is open. *)

val open_depth : t -> int
(** Number of currently open spans; 0 when the trace is balanced. *)

(** {1 Counters} *)

val counter : t -> string -> int -> unit
(** [counter t name n] adds [n] to the tracer-wide counter [name]. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Reading a trace} *)

val spans : t -> span list
(** Completed spans in completion order (children before parents). *)

val span_count : t -> int
(** [List.length (spans t)], O(1); a cheap high-water mark so callers can
    slice out the spans of one sub-computation. *)

val elapsed : t -> float
(** Seconds since the tracer's epoch. *)

val absorb : t -> t -> unit
(** [absorb t child] splices a finished private tracer into [t]: the
    child's closed spans reappear in [t] shifted to [t]'s epoch (the two
    tracers should share a clock) and nested under [t]'s currently open
    spans; counters accumulate by name. No-op unless both tracers are
    enabled. This is how per-job traces from pool workers land in the
    run-wide trace a CLI [--trace-out] exports. *)

(** {1 The ambient tracer}

    The CLI and benchmark harness install one tracer for a whole run;
    deep call sites (the evaluator reached through {!Translator}, table
    construction) fall back to it when no explicit tracer was threaded
    to them. Defaults to {!null}: nothing is traced unless installed.
    The binding is per-domain: a freshly spawned domain starts at
    {!null} and installs its own (typically per-job) tracer. *)

val install : ?attr_counts:bool -> t -> unit
(** Make [t] the ambient tracer. [attr_counts] (default [false]) turns on
    per-production attribute-evaluation counting in the evaluator — the
    CLI's [--trace-attrs] debugging mode (à la Sasaki–Sassa). *)

val ambient : unit -> t

val ambient_attr_counts : unit -> bool

val resolve : t -> t
(** [resolve t] is [t] when enabled, else the ambient tracer: how an
    options record with a default [null] tracer composes with {!install}. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> t -> unit
(** Hierarchical summary: per span path, call count, total seconds, and
    summed integer arguments; then the tracer-wide counters. Sibling
    spans with the same name are merged. *)

val to_chrome_json : ?process_name:string -> t -> string
(** Chrome [trace_event] JSON (the ["traceEvents"] object form): one
    ["ph":"X"] complete event per span with microsecond [ts]/[dur], one
    ["ph":"C"] event per tracer-wide counter, and a process-name metadata
    record. Open [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}
    and load the file. *)

val write_chrome : ?process_name:string -> t -> path:string -> unit
(** {!to_chrome_json} to a file. *)
