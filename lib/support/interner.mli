(** Name table: the paper's identifier-interning package.

    LINGUIST-86 keeps "name-table entries that store the source text of
    identifiers" in its 48K dynamic area; intrinsic attributes of terminals
    denote name-table indices. This module provides the same service:
    strings are mapped to dense integer names, and names back to strings,
    in amortized O(1).

    Tables are safe to share across domains: a translator's name table
    is interned into by every concurrent evaluation run against that
    translator (the batch-evaluation pool), so each operation runs under
    an internal mutex. Names remain dense and stable; which string gets
    which index depends on interning order and is therefore only
    deterministic single-threaded. *)

type t
(** A mutable name table. *)

type name = int
(** A dense index into one table. Valid only for the table that issued it. *)

val create : ?initial_size:int -> unit -> t

val intern : t -> string -> name
(** [intern t s] returns the unique name for [s], allocating it on first
    use. Subsequent calls with an equal string return the same name. *)

val find_opt : t -> string -> name option
(** Like {!intern} but never allocates. *)

val text : t -> name -> string
(** The source text of a name.
    @raise Invalid_argument if the name was not issued by this table. *)

val count : t -> int
(** Number of distinct names interned so far. *)

val mem : t -> string -> bool

val iter : t -> (name -> string -> unit) -> unit
(** Iterate in order of allocation. *)

val footprint_bytes : t -> int
(** Approximate heap bytes used by stored texts — reproduces the paper's
    memory accounting for the name table. *)
