(** The serving layer's flight recorder: a bounded, append-only ring of
    typed per-job lifecycle events.

    Where {!Metrics} aggregates and {!Trace} times, the event log
    {e narrates}: one record per state transition of one job —
    [submitted], [dequeued], [session_hit]/[session_build], [started],
    [pass], [finished], [failed] — in arrival order, each stamped with
    the job id and the request's trace id. The ring holds the most
    recent [capacity] events; older ones fall off the back, so a
    long-running server pays a fixed memory cost for an always-current
    story of what it was just doing.

    Its purpose is the post-mortem path: when the supervision layer
    fails a job with a typed [worker_crashed] or [deadline_exceeded]
    (exit 51/50), the serve front-end asks for that job's recent events
    ({!recent}) and dumps them next to the typed diagnostic as a
    flight-recorder artifact ({!postmortem_json}; the dump format is
    documented in [docs/OBSERVABILITY.md]).

    Mirrors the {!Trace}/{!Metrics} design: a disabled log ({!null})
    reduces {!record} to one field check, and an enabled log guards its
    ring with a mutex, so connection threads and pool worker domains
    append concurrently without ceremony.

    Event kinds are open strings rather than a closed variant: the log
    is a support-layer facility and must not depend on the server
    layer's vocabulary. The serving layer's kinds are the typed set
    above. *)

type event = {
  ev_seq : int;  (** monotone, 0-based; survives ring wrap-around *)
  ev_time : float;  (** [Unix.gettimeofday] at {!record} *)
  ev_job : string;  (** job id ([""] for server-scoped events) *)
  ev_trace : string;  (** request trace id; [""] when unpropagated *)
  ev_kind : string;  (** ["submitted"], ["dequeued"], ["failed"], … *)
  ev_fields : (string * Json_out.t) list;  (** kind-specific detail *)
}

type t

val null : t
(** The disabled log: {!record} is a near-no-op, queries answer empty. *)

val create : ?capacity:int -> unit -> t
(** A fresh enabled log holding the last [capacity] (default 512, at
    least 16) events. *)

val enabled : t -> bool
val capacity : t -> int

val record :
  t ->
  ?trace:string ->
  ?fields:(string * Json_out.t) list ->
  job:string ->
  string ->
  unit
(** [record t ~job kind] appends one event, evicting the oldest when the
    ring is full. *)

val recorded : t -> int
(** Events ever recorded (≥ the number still resident). *)

val recent : ?job:string -> ?limit:int -> t -> event list
(** Resident events, oldest first; [job] keeps only that job's records,
    [limit] keeps only the newest [limit] of the selection. *)

val event_json : event -> Json_out.t
(** [{"seq":_,"time":_,"job":_,"trace":_,"kind":_, ...fields}] — the
    record schema of both the dump below and the docs. *)

val postmortem_json :
  t ->
  job:string ->
  reason:string ->
  exit_code:int ->
  detail:string ->
  trace:string ->
  Json_out.t
(** The flight-recorder dump for one failed job: a
    [{"linguist_postmortem":1}]-tagged object carrying the typed
    diagnostic ([reason]/[exit_code]/[detail]), the request's [trace]
    id, and the job's resident events ({!recent} with its id). *)
