(* Double-checked: the fast path is one atomic load; only initialization
   takes the mutex. The value is published by [Atomic.set] after the
   thunk completes, so a reader that sees [Some v] sees a fully built
   [v]. *)

type 'a t = {
  cell : 'a option Atomic.t;
  lock : Mutex.t;
  thunk : unit -> 'a;
}

let make thunk = { cell = Atomic.make None; lock = Mutex.create (); thunk }

let force t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () -> (
      match Atomic.get t.cell with
      | Some v -> v
      | None ->
          let v = t.thunk () in
          Atomic.set t.cell (Some v);
          v)
