(* A mutex-guarded ring: [ring] is a fixed array of slots, [next] the
   running sequence number; event seq modulo the capacity addresses its
   slot, so the newest [capacity] events are always resident and an
   append is O(1) with no allocation beyond the record itself. *)

type event = {
  ev_seq : int;
  ev_time : float;
  ev_job : string;
  ev_trace : string;
  ev_kind : string;
  ev_fields : (string * Json_out.t) list;
}

type t = {
  on : bool;
  lock : Mutex.t;
  ring : event option array;
  mutable next : int;  (* seq of the next event = total recorded *)
}

let null = { on = false; lock = Mutex.create (); ring = [||]; next = 0 }

let create ?(capacity = 512) () =
  {
    on = true;
    lock = Mutex.create ();
    ring = Array.make (max 16 capacity) None;
    next = 0;
  }

let enabled t = t.on
let capacity t = Array.length t.ring

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record t ?(trace = "") ?(fields = []) ~job kind =
  if t.on then
    locked t @@ fun () ->
    let ev =
      {
        ev_seq = t.next;
        ev_time = Unix.gettimeofday ();
        ev_job = job;
        ev_trace = trace;
        ev_kind = kind;
        ev_fields = fields;
      }
    in
    t.ring.(t.next mod Array.length t.ring) <- Some ev;
    t.next <- t.next + 1

let recorded t = locked t (fun () -> t.next)

let recent ?job ?limit t =
  if not t.on then []
  else
    let events =
      locked t @@ fun () ->
      let cap = Array.length t.ring in
      let first = max 0 (t.next - cap) in
      let rec collect seq acc =
        if seq >= t.next then List.rev acc
        else
          match t.ring.(seq mod cap) with
          | Some ev -> collect (seq + 1) (ev :: acc)
          | None -> collect (seq + 1) acc
      in
      collect first []
    in
    let events =
      match job with
      | None -> events
      | Some id -> List.filter (fun ev -> String.equal ev.ev_job id) events
    in
    match limit with
    | None -> events
    | Some n ->
        let drop = max 0 (List.length events - max 0 n) in
        List.filteri (fun i _ -> i >= drop) events

let event_json ev =
  Json_out.Obj
    ([
       ("seq", Json_out.int ev.ev_seq);
       ("time", Json_out.Num ev.ev_time);
       ("job", Json_out.Str ev.ev_job);
       ("trace", Json_out.Str ev.ev_trace);
       ("kind", Json_out.Str ev.ev_kind);
     ]
    @ ev.ev_fields)

let postmortem_json t ~job ~reason ~exit_code ~detail ~trace =
  Json_out.Obj
    [
      ("linguist_postmortem", Json_out.int 1);
      ("job", Json_out.Str job);
      ("reason", Json_out.Str reason);
      ("exit", Json_out.int exit_code);
      ("detail", Json_out.Str detail);
      ("trace", Json_out.Str trace);
      ( "events",
        Json_out.Arr (List.map event_json (recent ~job t)) );
    ]
