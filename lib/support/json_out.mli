(** A minimal JSON tree: one shared reader/writer for every JSON the
    system touches.

    The pipeline emits several machine-readable documents — Chrome
    [trace_event] exports ({!Trace.to_chrome_json}), APT I/O counter
    dumps ([Lg_apt.Io_stats.to_json]), the benchmark harness's
    [BENCH_*.json] tables, metrics snapshots ({!Metrics.to_json}) and
    per-run manifests ([Linguist.Manifest]) — and the test suite and the
    bench regression gate read them back. All of them go through this one
    zero-dependency module instead of ad-hoc [Printf] printers, so
    escaping and number formatting cannot drift between producers.

    Numbers are floats (as in JSON itself); integers survive a
    round-trip exactly up to 2{^53}. The parser raises [Failure] on
    malformed input. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [Num (float_of_int n)]. *)

(** {1 Writing} *)

val escape : string -> string
(** Body of a JSON string literal (no surrounding quotes): ASCII control
    characters, quotes and backslashes escaped. *)

val number : float -> string
(** Shortest rendering that re-parses to the same float; integral values
    print without a fractional part. JSON has no representation for
    non-finite floats, so they are clamped to the nearest representable
    value — NaN to [0], positive/negative infinity to
    [+/-Float.max_float] — keeping a {!Num} leaf numeric after a
    round-trip. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents by two spaces with one
    object member / array element per line. Either form re-parses with
    {!parse} to an equal tree, up to the non-finite clamping documented
    at {!number}. *)

val to_buffer : ?pretty:bool -> Buffer.t -> t -> unit

(** {1 Reading} *)

val parse : string -> t
(** @raise Failure on malformed input, with the byte offset. *)

val member : string -> t -> t option
(** Object member lookup; [None] on a missing key or a non-object. *)

val member_exn : string -> t -> t
val to_list : t -> t list
val to_num : t -> float
val to_int : t -> int
val to_str : t -> string
