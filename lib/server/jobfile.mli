(** The [linguist_jobs:1] job-list format.

    A jobfile is what [linguist batch] consumes and what a [serve]
    client embeds one entry of in a ["job"] request: a JSON document

    {v
    { "linguist_jobs": 1,
      "jobs": [
        { "id": "calc-1", "op": "analyze", "file": "grammars/desk_calc.ag",
          "store": "paged", "page_size": 4096,
          "faults": "7:0.01:transient",
          "depth_budget": 100000, "node_budget": 0 },
        { "id": "sum", "op": "translate", "language": "desk_calc",
          "file": "inputs/sum.calc" } ] }
    v}

    Operations: ["check"] (native driver diagnostics), ["analyze"] (the
    self-hosted evaluator generated from [linguist.ag] over an [.ag]
    source — a full parallel evaluator run), ["translate"] (a tenant
    translator over an input text), and ["update"] (an incremental
    re-translation: like ["translate"], but when the batch/serve run has
    [--incremental] on, successive updates to the same ["doc"] diff
    against the cached tree and re-fire only the edit's consequences —
    see [docs/INCREMENTAL.md]). ["translate"]/["update"] name their
    tenant with exactly one of ["language"] (a built-in; see
    {!Session.language_names}) or ["grammar"] (a path to an [.ag]
    source compiled on demand — the corpus multi-tenant path, see
    [docs/CORPUS.md]). Every field but [op] and [file] is
    optional: [id] defaults to ["job-N"] (1-based position), [doc] (only
    valid on ["update"]) to the job's [file] path, [store] to ["mem"],
    budgets to the engine defaults, [faults] (a [SEED:RATE:KINDS] spec
    as in [--apt-faults]) to none, [deadline] (a positive wall-clock
    budget in seconds, measured from submission — queue wait counts) to
    the run's [--deadline] default or none.

    Reading is strict — an unknown [op], a malformed [faults] spec or a
    wrong [linguist_jobs] version is an [Error], not a guess — and
    {!to_string} emits a document that re-reads to the same list, which
    the golden round-trip in [test_cli.ml] pins. *)

type tenant =
  | Language of string
      (** a built-in language translator; see {!Session.language_names} *)
  | Grammar of string
      (** path to an [.ag] source compiled on demand into a translator
          with the grammar-derived symbolic scanner
          ({!Linguist.Translator.of_source}) — the multi-tenant path
          corpus workloads use (see [docs/CORPUS.md]). Sessions are
          keyed by the grammar file's content digest. *)

type op =
  | Check
  | Analyze
  | Translate of tenant
  | Update of tenant  (** incremental re-translation *)

type job = {
  j_id : string;
  j_op : op;
  j_file : string;  (** input path, resolved against the process cwd *)
  j_source : string option;
      (** inline input text. When present the job never reads [j_file] —
          the path is kept purely as the job's label (ids, outcome
          records, doc identity), so a job shipped to a worker host that
          has no copy of the input file runs there and still reports
          byte-identical outcomes. The distributed coordinator inlines
          every job's input this way (see [docs/FABRIC.md]). *)
  j_doc : string option;
      (** document identity for [Update] — updates sharing a doc share
          incremental state; defaults to [j_file] *)
  j_store : string;  (** APT store name (registry of {!Lg_apt.Store_registry}) *)
  j_page_size : int option;
  j_faults : Lg_apt.Apt_store.fault_spec option;
  j_depth_budget : int option;
  j_node_budget : int option;
  j_deadline : float option;
      (** per-job wall-clock budget (seconds); overrides the run
          default. Over budget ⇒ the job fails with
          {!Server_error.Deadline_exceeded} (exit 50). *)
}

val version : int
(** 1 — bumped only on incompatible change. *)

val make :
  ?id:string ->
  ?source:string ->
  ?doc:string ->
  ?store:string ->
  ?page_size:int ->
  ?faults:Lg_apt.Apt_store.fault_spec ->
  ?depth_budget:int ->
  ?node_budget:int ->
  ?deadline:float ->
  op:op ->
  file:string ->
  unit ->
  job
(** A job with the documented defaults ([id] defaults to [""] and is
    assigned positionally by {!parse}/{!to_json} consumers that need
    one). *)

val op_name : op -> string

val render_faults : Lg_apt.Apt_store.fault_spec -> string
(** The [SEED:RATE:KINDS] spec string; inverse of
    {!Lg_apt.Store_faulty.parse_spec}. *)

val job_to_json : job -> Lg_support.Json_out.t
(** One job as its jobfile-entry document — what a [serve] client (and
    the fabric coordinator) embeds as a request's ["job"] member.
    Round-trips through {!job_of_json}. *)

val job_of_json : index:int -> Lg_support.Json_out.t -> (job, string) result
(** One job object ([index] names an id-less job); the element codec of
    {!parse}, exposed for the socket protocol's ["job"] requests. *)

val parse : string -> (job list, string) result
(** Parse a jobfile document. *)

val parse_file : string -> (job list, string) result

val to_json : job list -> Lg_support.Json_out.t
val to_string : ?pretty:bool -> job list -> string
