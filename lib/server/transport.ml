(* The wire layer the serve protocol runs over: framed messages (4-byte
   big-endian length + JSON payload) over either a Unix-domain socket or
   TCP. The framing knows nothing about endpoints and the endpoints
   nothing about JSON — Server composes both. *)

let max_frame = 16 * 1024 * 1024

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then failwith "connection closed mid-frame";
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None (* clean EOF between frames *)
  | n ->
      if n < 4 then really_read fd hdr n (4 - n);
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        failwith (Printf.sprintf "frame length %d out of range" len);
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then failwith "response exceeds max_frame";
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_be msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd msg off remaining in
      go (off + n) (remaining - n)
    end
  in
  go 0 (4 + len)

(* ---------- endpoints ---------- *)

type endpoint = Unix_path of string | Tcp of string * int

let to_string = function
  | Unix_path path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | None -> Error (Printf.sprintf "%S: expected HOST:PORT" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 && host <> "" -> Ok (Tcp (host, p))
      | _ ->
          Error
            (Printf.sprintf "%S: port must be a number in 0..65535 %s" spec
               "(0 lets the OS pick)"))

let resolve host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
      with
      | { Unix.ai_addr; _ } :: _ -> ai_addr
      | [] | (exception Not_found) ->
          raise (Unix.Unix_error (Unix.EHOSTUNREACH, "getaddrinfo", host)))

let closing_on_error fd f =
  match f () with
  | v -> v
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

(* evaluation responses are one whole frame, so coalescing tiny writes
   buys nothing — turn Nagle off for interactive latency *)
let nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let connect = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      closing_on_error fd (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          fd)
  | Tcp (host, port) ->
      let addr = resolve host port in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      closing_on_error fd (fun () ->
          Unix.connect fd addr;
          nodelay fd;
          fd)

let listen ?(backlog = 16) = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      closing_on_error fd (fun () ->
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          Unix.bind fd (Unix.ADDR_UNIX path);
          Unix.listen fd backlog;
          (fd, Unix_path path))
  | Tcp (host, port) ->
      let addr = resolve host port in
      let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
      closing_on_error fd (fun () ->
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd addr;
          Unix.listen fd backlog;
          let bound =
            (* port 0 lets the OS pick: report the port actually bound *)
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> Tcp (host, p)
            | _ -> Tcp (host, port)
          in
          (fd, bound))
