(** Deterministic server-layer chaos injection.

    The serving sibling of the APT layer's fault injection
    ({!Lg_apt.Store_faulty}): a [SEED:RATE:KINDS] spec drives
    reproducible failures {e above} the storage stack — in the worker
    pool and on the wire — so the supervision, deadline, quarantine and
    retry machinery is testable and benchable.

    Kinds:
    - [delay] — the job sleeps {!delay_seconds} before evaluating
      (latency injection);
    - [crash] — the job raises {!Pool.Crash}: the worker domain dies and
      is respawned, the job fails with a typed
      {!Server_error.Worker_crashed};
    - [wedge] — the job sleeps {!wedge_seconds} first, simulating a
      wedged worker: with a deadline set, the pool watchdog fails the
      job ({!Server_error.Deadline_exceeded}) and recycles the worker;
    - [drop] — the server closes the connection instead of writing a
      response (the retrying client's recovery path).

    {b Determinism}: job-level rolls are a pure function of
    [(seed, job id, job file)] — independent of worker count, queue
    order or wall clock — so the set of injected jobs is identical
    across runs and the surviving jobs can be demanded byte-identical
    to a fault-free sequential run. Connection drops are rolled per
    response serial: deterministic in count, not in which request they
    hit (liveness, not bytes, is the asserted property).

    An optional {e poison} substring marks an always-crashing tenant:
    any job whose id or file contains it crashes its worker every time
    — the session-quarantine scenario. *)

type kind = Delay | Crash | Wedge | Drop

type spec = { c_seed : int; c_rate : float; c_kinds : kind list }

val parse_spec : string -> (spec, string) result
(** ["SEED:RATE:KINDS"] with [KINDS] a comma list of
    [delay|crash|wedge|drop] or [all], e.g. ["9:0.05:crash,drop"]. *)

val render_spec : spec -> string
(** Inverse of {!parse_spec}. *)

type t

val create :
  ?poison:string ->
  ?delay:float ->
  ?wedge:float ->
  ?metrics:Lg_support.Metrics.t ->
  spec ->
  t
(** [delay] (default 0.02 s) and [wedge] (default 0.5 s) are the
    injected sleep durations; [metrics] receives [server.chaos.*]
    injection counters; [poison] marks always-crashing jobs by
    id/file substring. *)

val spec : t -> spec
val delay_seconds : t -> float
val wedge_seconds : t -> float

type job_action = Delay_job | Crash_job | Wedge_job

val on_job : t -> id:string -> file:string -> job_action option
(** The injection decision for one job — deterministic in
    [(seed, id, file)]. Poisoned jobs always get [Crash_job]. *)

val drop_response : t -> bool
(** Roll whether to drop the next response's connection ([Drop] must be
    among the spec's kinds). *)
