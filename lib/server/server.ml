(* Concurrency shape: the accept loop and one OS thread per connection
   do only I/O and pool bookkeeping; actual evaluation runs on the
   pool's domains. Threads (not domains) are the right tool on the
   connection side — they're cheap, they block on reads, and they share
   the process's one listening socket and stop flag. *)

let max_frame = Transport.max_frame
let protocol_version = 1

(* framed I/O — 4-byte big-endian length, then the JSON payload — over
   any descriptor: the Unix socket, the TCP listener's connections, the
   coordinator's dispatch streams. The framing lives in Transport. *)
let read_frame = Transport.read_frame
let write_frame = Transport.write_frame

open Lg_support.Json_out

let error_response msg extra = Obj ([ ("ok", Bool false); ("error", Str msg) ] @ extra)

let outcome_response (o : Batch.outcome) =
  Obj
    [
      ("ok", Bool o.Batch.o_ok);
      ("id", Str o.Batch.o_id);
      ("op", Str o.Batch.o_op);
      ("file", Str o.Batch.o_file);
      ("exit", int o.Batch.o_exit);
      ( "error",
        match o.Batch.o_error with Some m -> Str m | None -> Null );
      ("payload", o.Batch.o_payload);
    ]

(* the grammar spool: content-addressed sources shipped by a submitter
   over the grammar_put handshake, one file per digest under a per-serve
   temp directory, so fabric jobs naming a grammar this host never saw
   can resolve their tenant locally *)
type spool = {
  sp_lock : Mutex.t;
  sp_dir : string;
  sp_table : (string, string) Hashtbl.t;  (* digest -> spooled path *)
}

type state = {
  pool : Pool.t;
  sessions : Session.cache;
  metrics : Lg_support.Metrics.t;
  tracer : Lg_support.Trace.t;  (* run-wide; requests absorb into it *)
  events : Lg_support.Eventlog.t;  (* the flight recorder *)
  postmortem_dir : string option;
  postmortem_keep : int option;  (* retention cap: keep the newest N *)
  pm_counter : int Atomic.t;  (* unique dump filenames *)
  tenants : Ledger.t;
  tenants_file : string option;  (* ledger snapshot path, if persisted *)
  spool : spool;  (* directory created on the first grammar_put *)
  incremental : Batch.incremental option;
  chaos : Chaos.t option;
  deadline : float option;  (* default budget for job/update ops *)
  started : float;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
}

(* The [update] op body, run on a pool domain like a job: parse the
   inline source, diff/propagate against the document's cached state
   (when --incremental is on), answer outputs + evaluation-mode
   statistics. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tenant_session st = function
  | Jobfile.Language lang -> Session.language_session st.sessions lang
  | Jobfile.Grammar path ->
      Session.translator_session st.sessions ~file:path
        ~source:(read_file path) ()

let run_update st ~tenant ~doc ~source =
  match tenant_session st tenant with
  | exception Failure msg -> error_response msg []
  | exception Sys_error msg -> error_response msg []
  | session -> (
      let translator =
        match session.Session.s_payload with
        | Session.Translator t -> t
        | Session.Artifact _ -> assert false
      in
      let diag = Lg_support.Diag.create () in
      match
        Linguist.Translator.tree_of_source translator ~file:doc ~diag source
      with
      | None ->
          error_response
            (Linguist.Listing.errors_only ~source ~file:doc diag)
            []
      | Some tree ->
          let inc =
            Option.value st.incremental ~default:Batch.default_incremental
          in
          let config =
            {
              Lg_incremental.Incr.default_config with
              threshold = inc.Batch.inc_threshold;
              spill =
                (if inc.Batch.inc_spill then Some Lg_apt.Aptfile.Mem else None);
            }
          in
          let plan = Linguist.Translator.plan translator in
          let engine_options = Linguist.Engine.default_options in
          let result =
            match st.incremental with
            | None ->
                (* serving statelessly: correct, just not incremental *)
                fst
                  (Lg_incremental.Incr.update config ~plan ~engine_options
                     ~tree)
            | Some _ ->
                let slot =
                  Session.doc_slot st.sessions ~digest:session.Session.s_digest
                    ~doc
                in
                Mutex.lock slot.Session.doc_lock;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock slot.Session.doc_lock)
                  (fun () ->
                    let result, next =
                      Lg_incremental.Incr.update ?state:slot.Session.doc_state
                        config ~plan ~engine_options ~tree
                    in
                    slot.Session.doc_state <- next;
                    result)
          in
          let mode_json =
            match result.Lg_incremental.Incr.mode with
            | Lg_incremental.Incr.Fresh { fired } ->
                Obj [ ("kind", Str "fresh"); ("fired", int fired) ]
            | Lg_incremental.Incr.Incremental
                { reused; fresh; fired; waves; changed } ->
                Obj
                  [
                    ("kind", Str "incremental");
                    ("reused_nodes", int reused);
                    ("fresh_nodes", int fresh);
                    ("fired", int fired);
                    ("waves", int waves);
                    ("changed", int changed);
                  ]
            | Lg_incremental.Incr.Fallback { reason; churn } ->
                Obj
                  [
                    ("kind", Str "fallback");
                    ("reason", Str reason);
                    ("churn", Num churn);
                  ]
          in
          Obj
            [
              ("ok", Bool true);
              ("session", Str session.Session.s_digest);
              ("doc", Str doc);
              ( "outputs",
                Obj
                  (List.map
                     (fun (name, v) ->
                       (name, Str (Lg_support.Value.to_string v)))
                     result.Lg_incremental.Incr.outputs) );
              ("tree_size", int result.Lg_incremental.Incr.tree_size);
              ("incremental", mode_json);
            ])

let info_json (i : Session.info) =
  Obj
    [
      ("digest", Str i.Session.i_digest);
      ("label", Str i.Session.i_label);
      ("weight", Num i.Session.i_weight);
      ("build_seconds", Num i.Session.i_build_seconds);
      ("age_seconds", Num i.Session.i_age);
      ("idle_seconds", Num i.Session.i_idle);
      ("docs", int i.Session.i_docs);
    ]

let quarantined_json st =
  Arr
    (List.map
       (fun (digest, label, strikes) ->
         Obj
           [
             ("digest", Str digest);
             ("label", Str label);
             ("strikes", int strikes);
           ])
       (Session.quarantined st.sessions))

(* a supervision failure on an op without a jobfile entry (update):
   typed errors keep their exit code in the response *)
let supervised_error e extra =
  match e with
  | Server_error.Error se ->
      error_response (Server_error.to_string se)
        (("exit", int (Server_error.exit_code se)) :: extra)
  | e -> error_response (Printexc.to_string e) extra

(* the accounting digest of an [update] op's tenant — the same key
   Batch.culprit answers for jobfile entries *)
let update_tenant_digest = function
  | Jobfile.Language lang ->
      Some (Session.digest ~kind:"language" ~source:lang, "language:" ^ lang)
  | Jobfile.Grammar path -> (
      match read_file path with
      | source ->
          Some
            ( Session.digest ~kind:"translator" ~source,
              "translator:" ^ Filename.basename path )
      | exception _ -> None)

let safe_filename id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '_')
    id

(* Retention: keep only the newest [keep] postmortem-*.json dumps in
   [dir] (newest by mtime, ties broken by name so pruning is
   deterministic); answers how many it deleted. Unlink races with an
   operator tidying the directory are benign. *)
let prune_postmortems ~dir ~keep ~metrics =
  let keep = max 0 keep in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | names ->
      let dumps =
        Array.to_list names
        |> List.filter (fun name ->
               String.length name > 11
               && String.sub name 0 11 = "postmortem-"
               && Filename.check_suffix name ".json")
        |> List.filter_map (fun name ->
               let path = Filename.concat dir name in
               match Unix.stat path with
               | { Unix.st_mtime; _ } -> Some (st_mtime, name, path)
               | exception Unix.Unix_error _ -> None)
        |> List.sort (fun (ta, na, _) (tb, nb, _) ->
               (* newest first *)
               match compare tb ta with 0 -> compare nb na | c -> c)
      in
      let victims = List.filteri (fun i _ -> i >= keep) dumps in
      List.fold_left
        (fun pruned (_, _, path) ->
          match Sys.remove path with
          | () ->
              Lg_support.Metrics.incr metrics "server.postmortems_pruned";
              pruned + 1
          | exception Sys_error _ -> pruned)
        0 victims

(* The flight-recorder dump: when the supervision layer fails a job with
   a typed worker_crashed/deadline_exceeded (exit 51/50), the job's
   recent lifecycle events leave the ring as a post-mortem artifact next
   to the typed diagnostic. Quarantine refusals (52) are admission
   control, not crashes — no dump. *)
let write_postmortem st ~job_id ~trace e =
  match (st.postmortem_dir, e) with
  | ( Some dir,
      Server_error.Error
        ((Server_error.Deadline_exceeded _ | Server_error.Worker_crashed _) as
         se) ) -> (
      let doc =
        Lg_support.Eventlog.postmortem_json st.events ~job:job_id
          ~reason:(Server_error.class_name se)
          ~exit_code:(Server_error.exit_code se)
          ~detail:(Server_error.to_string se) ~trace
      in
      let path =
        Filename.concat dir
          (Printf.sprintf "postmortem-%s-%d.json" (safe_filename job_id)
             (Atomic.fetch_and_add st.pm_counter 1))
      in
      (try
         let oc = open_out path in
         output_string oc (to_string ~pretty:true doc);
         output_char oc '\n';
         close_out oc
       with Sys_error _ -> ());
      match st.postmortem_keep with
      | Some keep -> ignore (prune_postmortems ~dir ~keep ~metrics:st.metrics)
      | None -> ())
  | _ -> ()

(* session-hit/build and pass-k lifecycle events, mined from the spans
   the job just recorded into the request tracer past [mark] — the
   evaluator and session cache need no event-log plumbing of their own *)
let record_lifecycle_events st ~trace ~job ~mark rt =
  if Lg_support.Eventlog.enabled st.events && Lg_support.Trace.enabled rt then
    List.filteri (fun i _ -> i >= mark) (Lg_support.Trace.spans rt)
    |> List.iter (fun (sp : Lg_support.Trace.span) ->
           let record kind =
             Lg_support.Eventlog.record st.events ~trace
               ~fields:
                 [
                   ("name", Str sp.Lg_support.Trace.sp_name);
                   ("seconds", Num sp.Lg_support.Trace.sp_dur);
                 ]
               ~job kind
           in
           match sp.Lg_support.Trace.sp_cat with
           | "pass" -> record "pass"
           | "session" -> record sp.Lg_support.Trace.sp_name
           | _ -> ())

(* echo the client-minted trace id on the response, closing the loop *)
let with_trace_id trace response =
  match response with
  | Obj members when trace <> "" -> Obj (members @ [ ("trace", Str trace) ])
  | response -> response

(* ---------- the grammar spool (fabric handshake) ---------- *)

(* store a verified grammar source under its content digest; idempotent
   (content-addressed: same digest = same bytes, the existing file is
   the answer). The spool directory is created on first use. *)
let spool_store st ~digest ~name ~source =
  let sp = st.spool in
  Mutex.lock sp.sp_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sp.sp_lock) @@ fun () ->
  match Hashtbl.find_opt sp.sp_table digest with
  | Some path -> Ok path
  | None -> (
      let dir = Filename.concat sp.sp_dir (safe_filename digest) in
      match
        (try Unix.mkdir sp.sp_dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path = Filename.concat dir name in
        let oc = open_out_bin path in
        output_string oc source;
        close_out oc;
        path
      with
      | path ->
          Hashtbl.replace sp.sp_table digest path;
          Ok path
      | exception Sys_error msg -> Error msg
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* Resolve a fabric job's grammar tenant against the spool: the job
   arrives naming the submitter's grammar path, which means nothing on
   this host — the ["session"] digest is the real key. A digest this
   host has not been shipped yet answers the typed ["grammar_miss"]
   refusal, which is the coordinator's cue to grammar_put and retry
   (the pull half of the handshake). The spooled file keeps the
   grammar's original basename, so session labels and tenant accounting
   read the same as a local run. *)
let spool_resolve st (job : Jobfile.job) session_member =
  let rewrite tenant =
    match job.Jobfile.j_op with
    | Jobfile.Translate _ -> { job with Jobfile.j_op = Jobfile.Translate tenant }
    | Jobfile.Update _ -> { job with Jobfile.j_op = Jobfile.Update tenant }
    | Jobfile.Check | Jobfile.Analyze -> job
  in
  match job.Jobfile.j_op with
  | Jobfile.Check | Jobfile.Analyze
  | Jobfile.Translate (Jobfile.Language _)
  | Jobfile.Update (Jobfile.Language _) ->
      Ok job
  | Jobfile.Translate (Jobfile.Grammar _) | Jobfile.Update (Jobfile.Grammar _)
    -> (
      match session_member with
      | Some (Str digest) -> (
          Mutex.lock st.spool.sp_lock;
          let spooled = Hashtbl.find_opt st.spool.sp_table digest in
          Mutex.unlock st.spool.sp_lock;
          match spooled with
          | Some path -> Ok (rewrite (Jobfile.Grammar path))
          | None ->
              Lg_support.Metrics.incr st.metrics "server.grammar_misses";
              Error (error_response "grammar_miss" [ ("digest", Str digest) ]))
      | _ ->
          Error
            (error_response
               "fabric_job with a \"grammar\" tenant needs a \"session\" digest"
               []))

(* The job-op body, shared by the local ["job"] op (interactive lane)
   and the fabric's ["fabric_job"] (lane chosen by the coordinator):
   admission, lifecycle events, tenant accounting, supervision-failure
   handling and the postmortem hook are identical either way. *)
let run_job_op st ~rt ~trace ~lane (job : Jobfile.job) =
  let deadline =
    match job.Jobfile.j_deadline with
    | Some _ as d -> d
    | None -> st.deadline
  in
  let label = job.Jobfile.j_id in
  Lg_support.Eventlog.record st.events ~trace
    ~fields:
      [
        ("op", Str (Jobfile.op_name job.Jobfile.j_op));
        ("file", Str job.Jobfile.j_file);
        ("lane", Str (Pool.lane_name lane));
      ]
    ~job:label "submitted";
  Lg_support.Trace.begin_span rt ~cat:"queue" "queue.wait";
  let submitted = Unix.gettimeofday () in
  (* charge exactly once: the thunk's success path and the supervision
     path can both reach for the ledger (a job that finishes just as
     its watchdog fires) *)
  let charged = Atomic.make false in
  let charge ~ok ~exit_code ~queue_wait ~service =
    if not (Atomic.exchange charged true) then
      match Batch.culprit job with
      | Some (digest, tenant_label) ->
          Ledger.charge st.tenants ~digest ~label:tenant_label ~ok ~exit_code
            ~queue_wait ~service
      | None -> ()
  in
  match
    Pool.submit ~label ~lane ?deadline st.pool (fun () ->
        let dequeued = Unix.gettimeofday () in
        Lg_support.Trace.end_span rt ();
        Lg_support.Eventlog.record st.events ~trace
          ~fields:[ ("queue_wait_seconds", Num (dequeued -. submitted)) ]
          ~job:label "dequeued";
        (* the request tracer becomes ambient for the job so session
           hit/build and evaluator pass spans land on this request's
           story *)
        let prev = Lg_support.Trace.ambient () in
        Lg_support.Trace.install rt;
        Fun.protect
          ~finally:(fun () -> Lg_support.Trace.install prev)
          (fun () ->
            Lg_support.Trace.begin_span rt ~cat:"serve" "service";
            Fun.protect
              ~finally:(fun () -> Lg_support.Trace.end_span rt ())
              (fun () ->
                Batch.quarantine_gate ~sessions:st.sessions job;
                (match st.chaos with
                | Some _ ->
                    Lg_support.Trace.span rt ~cat:"chaos" "chaos.gate"
                      (fun () -> Batch.chaos_gate ?chaos:st.chaos job)
                | None -> ());
                Lg_support.Eventlog.record st.events ~trace ~job:label
                  "started";
                let mark = Lg_support.Trace.span_count rt in
                let outcome =
                  Batch.run_job ~sessions:st.sessions
                    ?incremental:st.incremental job
                in
                record_lifecycle_events st ~trace ~job:label ~mark rt;
                let finished = Unix.gettimeofday () in
                Lg_support.Eventlog.record st.events ~trace
                  ~fields:
                    [
                      ("exit", int outcome.Batch.o_exit);
                      ("seconds", Num (finished -. dequeued));
                    ]
                  ~job:label
                  (if outcome.Batch.o_ok then "finished" else "failed");
                charge ~ok:outcome.Batch.o_ok
                  ~exit_code:outcome.Batch.o_exit
                  ~queue_wait:(dequeued -. submitted)
                  ~service:(finished -. dequeued);
                outcome)))
  with
  | Error { Pool.rj_depth; rj_capacity } ->
      Lg_support.Trace.end_span rt ();
      Lg_support.Eventlog.record st.events ~trace
        ~fields:[ ("exit", int 1); ("error", Str "saturated") ]
        ~job:label "failed";
      error_response "saturated"
        [ ("queue_depth", int rj_depth); ("capacity", int rj_capacity) ]
  | Ok handle -> (
      match Pool.await handle with
      | Ok outcome -> with_trace_id trace (outcome_response outcome)
      | Error e ->
          let outcome =
            Batch.failure_outcome ~metrics:st.metrics ~sessions:st.sessions
              job e
          in
          Lg_support.Eventlog.record st.events ~trace
            ~fields:
              [
                ("exit", int outcome.Batch.o_exit);
                ( "error",
                  match outcome.Batch.o_error with
                  | Some m -> Str m
                  | None -> Null );
              ]
            ~job:label "failed";
          charge ~ok:false ~exit_code:outcome.Batch.o_exit ~queue_wait:0.0
            ~service:0.0;
          write_postmortem st ~job_id:label ~trace e;
          with_trace_id trace (outcome_response outcome))

let handle_request st ~rt ~trace doc =
  match member "op" doc with
  | Some (Str "ping") ->
      Obj
        [
          ("ok", Bool true);
          ("server", Str "linguist");
          ("protocol", int protocol_version);
          ("workers", int (Pool.workers st.pool));
        ]
  | Some (Str "metrics") -> (
      match member "format" doc with
      | Some (Str "prometheus") ->
          Obj
            [
              ("ok", Bool true);
              ( "prometheus",
                Str
                  (Format.asprintf "%a" Lg_support.Metrics.pp_prometheus
                     st.metrics) );
            ]
      | Some (Str "json") | None ->
          Obj
            [ ("ok", Bool true); ("metrics", Lg_support.Metrics.to_json st.metrics) ]
      | Some _ -> error_response "unknown metrics format" [])
  | Some (Str "shutdown") ->
      Atomic.set st.stop true;
      Obj [ ("ok", Bool true); ("stopping", Bool true) ]
  | Some (Str "health") ->
      if Atomic.get st.draining then
        error_response "draining" [ ("status", Str "draining") ]
      else
        Obj
          [
            ("ok", Bool true);
            ("status", Str "serving");
            ("workers", int (Pool.workers st.pool));
            ("workers_live", int (Pool.live_workers st.pool));
            ("workers_parked", int (Pool.parked_workers st.pool));
            ("worker_restarts", int (Pool.restart_count st.pool));
            ("queue_depth", int (Pool.queue_depth st.pool));
            ("queue_peak", int (Pool.queue_peak st.pool));
            ("queue_capacity", int (Pool.capacity st.pool));
            ("sessions", int (Session.length st.sessions));
            ("quarantined", quarantined_json st);
            ("uptime_seconds", Num (Unix.gettimeofday () -. st.started));
          ]
  | Some (Str "tenants") ->
      Obj
        [
          ("ok", Bool true);
          ( "tenants",
            Arr
              (List.map
                 (fun (digest, label, jobs, ok, failures, queue_wait, service) ->
                   let hits, misses, evictions =
                     Session.tenant_stats st.sessions ~digest
                   in
                   Obj
                     [
                       ("digest", Str digest);
                       ("label", Str label);
                       ("jobs", int jobs);
                       ("ok", int ok);
                       ( "failures",
                         Obj
                           (List.map
                              (fun (code, n) -> (string_of_int code, int n))
                              failures) );
                       ("queue_wait_seconds", Num queue_wait);
                       ("service_seconds", Num service);
                       ( "cache",
                         Obj
                           [
                             ("hits", int hits);
                             ("misses", int misses);
                             ("evictions", int evictions);
                           ] );
                       ( "strikes",
                         int (Session.strike_count st.sessions ~digest) );
                       ( "quarantined",
                         Bool (Session.is_quarantined st.sessions ~digest) );
                     ])
                 (Ledger.snapshot st.tenants)) );
        ]
  | Some (Str "drain") ->
      Atomic.set st.draining true;
      (* drain announces intent to stop: checkpoint the ledger now so
         accounting survives even an unclean exit after the drain *)
      let ledger_saved =
        match st.tenants_file with
        | None -> Null
        | Some path -> (
            match Ledger.save st.tenants ~path with
            | Ok () -> Bool true
            | Error _ -> Bool false)
      in
      Obj
        [
          ("ok", Bool true);
          ("draining", Bool true);
          ("queue_depth", int (Pool.queue_depth st.pool));
          ("ledger_saved", ledger_saved);
        ]
  | Some (Str "job") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "job") -> (
      match member "job" doc with
      | None -> error_response "missing \"job\" member" []
      | Some jdoc -> (
          match Jobfile.job_of_json ~index:0 jdoc with
          | Error msg -> error_response msg []
          | Ok job ->
              (* local submissions are interactive-lane by default; a
                 client may demote itself to the bulk lane explicitly *)
              let lane =
                match member "lane" doc with
                | Some (Str "bulk") -> Pool.Bulk
                | _ -> Pool.Interactive
              in
              run_job_op st ~rt ~trace ~lane job))
  | Some (Str "fabric_job") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "fabric_job") -> (
      (* a coordinator-dispatched job: bulk lane unless flagged, the
         grammar tenant resolved through the spool by session digest *)
      let lane =
        match member "lane" doc with
        | Some (Str "interactive") -> Ok Pool.Interactive
        | Some (Str "bulk") | None -> Ok Pool.Bulk
        | Some _ -> Error "\"lane\" must be \"interactive\" or \"bulk\""
      in
      match (lane, member "job" doc) with
      | Error msg, _ -> error_response msg []
      | _, None -> error_response "missing \"job\" member" []
      | Ok lane, Some jdoc -> (
          match Jobfile.job_of_json ~index:0 jdoc with
          | Error msg -> error_response msg []
          | Ok job -> (
              match spool_resolve st job (member "session" doc) with
              | Error refusal -> with_trace_id trace refusal
              | Ok job -> run_job_op st ~rt ~trace ~lane job)))
  | Some (Str "grammar_put") -> (
      let str name =
        match member name doc with Some (Str s) -> Some s | _ -> None
      in
      match (str "digest", str "source") with
      | None, _ -> error_response "op \"grammar_put\" needs a \"digest\"" []
      | _, None -> error_response "op \"grammar_put\" needs a \"source\"" []
      | Some digest, Some source ->
          (* content-addressed verification: the digest is recomputed
             over the received bytes with the session key derivation, so
             a corrupted or mislabeled shipment can never poison the
             spool under another grammar's identity *)
          let actual = Session.digest ~kind:"translator" ~source in
          if not (String.equal actual digest) then
            error_response "grammar digest mismatch"
              [ ("expected", Str digest); ("got", Str actual) ]
          else begin
            let name =
              match str "name" with
              | Some n when safe_filename n <> "" -> safe_filename n
              | _ -> "grammar.ag"
            in
            match spool_store st ~digest ~name ~source with
            | Ok path ->
                Lg_support.Metrics.incr st.metrics "server.grammar_puts";
                Obj
                  [
                    ("ok", Bool true);
                    ("digest", Str digest);
                    ("spooled", Str path);
                  ]
            | Error msg -> error_response msg []
          end)
  | Some (Str "grammar_have") -> (
      match member "digest" doc with
      | Some (Str digest) ->
          Mutex.lock st.spool.sp_lock;
          let have = Hashtbl.mem st.spool.sp_table digest in
          Mutex.unlock st.spool.sp_lock;
          Obj [ ("ok", Bool true); ("digest", Str digest); ("have", Bool have) ]
      | _ -> error_response "op \"grammar_have\" needs a \"digest\"" [])
  | Some (Str "update") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "update") -> (
      let str name =
        match member name doc with Some (Str s) -> Some s | _ -> None
      in
      let tenant =
        match (str "language", str "grammar") with
        | Some _, Some _ -> Error "\"language\" and \"grammar\" are mutually exclusive"
        | Some lang, None -> Ok (Jobfile.Language lang)
        | None, Some path -> Ok (Jobfile.Grammar path)
        | None, None ->
            Error "op \"update\" needs a \"language\" or a \"grammar\""
      in
      match (tenant, str "source") with
      | Error msg, _ -> error_response msg []
      | _, None -> error_response "op \"update\" needs a \"source\"" []
      | Ok tenant, Some source -> (
          let tenant_name =
            match tenant with
            | Jobfile.Language lang -> lang
            | Jobfile.Grammar path -> path
          in
          let doc_id =
            Option.value (str "doc") ~default:("<" ^ tenant_name ^ ">")
          in
          let label = "update:" ^ doc_id in
          Lg_support.Eventlog.record st.events ~trace
            ~fields:[ ("op", Str "update"); ("doc", Str doc_id) ]
            ~job:label "submitted";
          Lg_support.Trace.begin_span rt ~cat:"queue" "queue.wait";
          let submitted = Unix.gettimeofday () in
          let charged = Atomic.make false in
          let charge ~ok ~exit_code ~queue_wait ~service =
            if not (Atomic.exchange charged true) then
              match update_tenant_digest tenant with
              | Some (digest, tenant_label) ->
                  Ledger.charge st.tenants ~digest ~label:tenant_label ~ok
                    ~exit_code ~queue_wait ~service
              | None -> ()
          in
          match
            Pool.submit ~label ~lane:Pool.Interactive ?deadline:st.deadline
              st.pool (fun () ->
                let dequeued = Unix.gettimeofday () in
                Lg_support.Trace.end_span rt ();
                Lg_support.Eventlog.record st.events ~trace
                  ~fields:
                    [ ("queue_wait_seconds", Num (dequeued -. submitted)) ]
                  ~job:label "dequeued";
                let prev = Lg_support.Trace.ambient () in
                Lg_support.Trace.install rt;
                Fun.protect
                  ~finally:(fun () -> Lg_support.Trace.install prev)
                  (fun () ->
                    Lg_support.Trace.begin_span rt ~cat:"serve" "service";
                    Fun.protect
                      ~finally:(fun () -> Lg_support.Trace.end_span rt ())
                      (fun () ->
                        Lg_support.Eventlog.record st.events ~trace ~job:label
                          "started";
                        let mark = Lg_support.Trace.span_count rt in
                        let response =
                          run_update st ~tenant ~doc:doc_id ~source
                        in
                        record_lifecycle_events st ~trace ~job:label ~mark rt;
                        let finished = Unix.gettimeofday () in
                        let ok =
                          match member "ok" response with
                          | Some (Bool b) -> b
                          | _ -> false
                        in
                        Lg_support.Eventlog.record st.events ~trace
                          ~fields:
                            [
                              ("exit", int (if ok then 0 else 1));
                              ("seconds", Num (finished -. dequeued));
                            ]
                          ~job:label
                          (if ok then "finished" else "failed");
                        charge ~ok
                          ~exit_code:(if ok then 0 else 1)
                          ~queue_wait:(dequeued -. submitted)
                          ~service:(finished -. dequeued);
                        response)))
          with
          | Error { Pool.rj_depth; rj_capacity } ->
              Lg_support.Trace.end_span rt ();
              Lg_support.Eventlog.record st.events ~trace
                ~fields:[ ("exit", int 1); ("error", Str "saturated") ]
                ~job:label "failed";
              error_response "saturated"
                [ ("queue_depth", int rj_depth); ("capacity", int rj_capacity) ]
          | Ok handle -> (
              match Pool.await handle with
              | Ok response -> with_trace_id trace response
              | Error e ->
                  let exit_code =
                    match e with
                    | Server_error.Error se -> Server_error.exit_code se
                    | _ -> 1
                  in
                  Lg_support.Eventlog.record st.events ~trace
                    ~fields:[ ("exit", int exit_code) ]
                    ~job:label "failed";
                  charge ~ok:false ~exit_code ~queue_wait:0.0 ~service:0.0;
                  write_postmortem st ~job_id:label ~trace e;
                  with_trace_id trace (supervised_error e []))))
  | Some (Str "evict") -> (
      let digest =
        match (member "digest" doc, member "language" doc) with
        | Some (Str d), _ -> Some d
        | None, Some (Str lang) ->
            Some (Session.digest ~kind:"language" ~source:lang)
        | _, _ -> None
      in
      match digest with
      | None -> error_response "op \"evict\" needs a \"digest\" or \"language\"" []
      | Some d ->
          Obj
            [
              ("ok", Bool true);
              ("evicted", Bool (Session.evict st.sessions ~digest:d));
            ])
  | Some (Str "clear") ->
      Obj [ ("ok", Bool true); ("cleared", int (Session.clear st.sessions)) ]
  | Some (Str "sessions") ->
      Obj
        [
          ("ok", Bool true);
          ("sessions", Arr (List.map info_json (Session.entries_info st.sessions)));
        ]
  | Some (Str other) -> error_response (Printf.sprintf "unknown op %S" other) []
  | _ -> error_response "missing \"op\" member" []

let connection_loop st fd =
  let observed =
    Lg_support.Trace.enabled st.tracer || Lg_support.Eventlog.enabled st.events
  in
  let rec go () =
    match read_frame fd with
    | None -> ()
    | Some payload ->
        let doc =
          match parse payload with
          | doc -> Ok doc
          | exception Failure msg -> Error msg
        in
        let op, trace =
          match doc with
          | Ok doc ->
              ( (match member "op" doc with Some (Str op) -> op | _ -> "?"),
                match member "trace" doc with Some (Str t) -> t | _ -> "" )
          | Error _ -> ("?", "")
        in
        (* one private tracer per request; the client-minted trace id
           rides on the request span, and the finished story is absorbed
           into the run-wide tracer for --trace-out *)
        let rt =
          if observed then Lg_support.Trace.create () else Lg_support.Trace.null
        in
        Lg_support.Trace.begin_span rt ~cat:"request" ("request:" ^ op);
        if trace <> "" then
          Lg_support.Trace.add_args rt
            [ ("trace", Lg_support.Trace.Str trace) ];
        let finish_rt () =
          (* a wedged/deadlined job can leave queue.wait or service open *)
          while Lg_support.Trace.open_depth rt > 0 do
            Lg_support.Trace.end_span rt ()
          done;
          Lg_support.Trace.absorb st.tracer rt
        in
        let continue =
          Fun.protect ~finally:finish_rt (fun () ->
              let response =
                match doc with
                | Error msg -> error_response ("bad request: " ^ msg) []
                | Ok doc -> handle_request st ~rt ~trace doc
              in
              (* a [drop] chaos roll closes the connection instead of
                 answering — the work is already done; the retrying
                 client's recovery path is what's under test *)
              let dropped =
                match st.chaos with
                | Some c when Chaos.drop_response c -> true
                | _ -> false
              in
              if dropped then false
              else begin
                Lg_support.Trace.span rt ~cat:"request" "response.write"
                  (fun () -> write_frame fd (to_string response));
                not (Atomic.get st.stop)
              end)
        in
        if continue then go ()
  in
  (* EPIPE/ECONNRESET from a client that hung up mid-response (SIGPIPE
     is ignored process-wide by [serve]) ends this connection only *)
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try go () with Failure _ | Unix.Unix_error _ -> ())

(* every in-process serve gets its own spool directory even when two
   run in one pid (tests, the fabric bench) *)
let spool_counter = Atomic.make 0

let fresh_spool_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "linguist-spool-%d-%d" (Unix.getpid ())
       (Atomic.fetch_and_add spool_counter 1))

(* the spool is two levels deep at most: digest dirs holding one source
   file each *)
let remove_spool_dir dir =
  let rm_tree path =
    match Sys.readdir path with
    | entries ->
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat path name) with Sys_error _ -> ())
          entries;
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | exception Sys_error _ -> ()
  in
  match Sys.readdir dir with
  | entries ->
      Array.iter (fun name -> rm_tree (Filename.concat dir name)) entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let serve ?queue_capacity ?session_capacity ?session_ttl ?quarantine_after
    ?metrics ?tracer ?events ?postmortem_dir ?postmortem_keep ?incremental
    ?chaos ?deadline ?slo_window ?tenants_file ?tcp ?on_tcp_port ~workers
    ~socket () =
  (* a client that vanishes mid-response must cost us an EPIPE, not the
     process; per-connection handling turns it into a closed connection *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let metrics =
    match metrics with Some m -> m | None -> Lg_support.Metrics.create ()
  in
  let tracer =
    match tracer with Some t -> t | None -> Lg_support.Trace.null
  in
  let events =
    match events with Some e -> e | None -> Lg_support.Eventlog.create ()
  in
  (match postmortem_dir with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | None -> ());
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 4 * max 1 workers
  in
  let tenants = Ledger.create () in
  (* reload persisted accounting before the listeners open, so a restart
     under traffic double-counts nothing; a missing snapshot is a first
     boot, a malformed one is a configuration error worth failing on *)
  (match tenants_file with
  | Some path when Sys.file_exists path -> (
      match Ledger.load tenants ~path with
      | Ok _ -> ()
      | Error msg -> failwith ("tenant ledger: " ^ msg))
  | Some _ | None -> ());
  let st =
    {
      pool = Pool.create ~metrics ?slo_window ~workers ~queue_capacity ();
      sessions =
        Session.create_cache ?capacity:session_capacity ?ttl:session_ttl
          ?quarantine_after ~metrics ();
      metrics;
      tracer;
      events;
      postmortem_dir;
      postmortem_keep;
      pm_counter = Atomic.make 0;
      tenants;
      tenants_file;
      spool =
        {
          sp_lock = Mutex.create ();
          sp_dir = fresh_spool_dir ();
          sp_table = Hashtbl.create 8;
        };
      incremental;
      chaos;
      deadline;
      started = Unix.gettimeofday ();
      stop = Atomic.make false;
      draining = Atomic.make false;
    }
  in
  let unix_listener, _ = Transport.listen (Transport.Unix_path socket) in
  let tcp_listener =
    match tcp with
    | None -> None
    | Some spec -> (
        match Transport.parse_tcp spec with
        | Error msg ->
            (try Unix.close unix_listener with Unix.Unix_error _ -> ());
            (try Unix.unlink socket with Unix.Unix_error _ -> ());
            invalid_arg ("--listen " ^ msg)
        | Ok endpoint ->
            let fd, bound = Transport.listen endpoint in
            (match bound with
            | Transport.Tcp (_, port) -> (
                match on_tcp_port with Some f -> f port | None -> ())
            | Transport.Unix_path _ -> ());
            Some fd)
  in
  let listeners =
    unix_listener :: (match tcp_listener with Some fd -> [ fd ] | None -> [])
  in
  let threads = ref [] in
  let finish () =
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      listeners;
    List.iter Thread.join !threads;
    Pool.drain st.pool;
    (match st.tenants_file with
    | Some path -> ignore (Ledger.save st.tenants ~path)
    | None -> ());
    remove_spool_dir st.spool.sp_dir;
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish @@ fun () ->
  while not (Atomic.get st.stop) do
    (* wake up periodically so a shutdown requested on some connection
       thread stops the accept loop too; both listeners feed the same
       connection loop — the protocol is transport-agnostic *)
    match Unix.select listeners [] [] 0.2 with
    | ready, _, _ ->
        List.iter
          (fun listener ->
            let fd, _ = Unix.accept listener in
            Transport.nodelay fd;
            threads := Thread.create (connection_loop st) fd :: !threads)
          ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let one_request_endpoint ~endpoint doc =
  let fd = Transport.connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_frame fd (to_string doc);
      match read_frame fd with
      | Some payload -> parse payload
      | None -> failwith "server closed the connection without a response")

(* what the retrying client treats as transient: the server not (yet)
   there, a connection torn down mid-exchange, or a dropped response.
   The network errors matter for TCP endpoints: a worker host mid-boot
   or briefly unreachable looks exactly like a socket not yet bound. *)
let retryable_exn = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
        | Unix.ENOTCONN | Unix.EHOSTUNREACH | Unix.ENETUNREACH
        | Unix.ETIMEDOUT | Unix.EADDRNOTAVAIL ),
        _,
        _ ) ->
      true
  | Failure msg ->
      String.equal msg "server closed the connection without a response"
      || String.equal msg "connection closed mid-frame"
  | _ -> false

(* the queue-full backpressure signal — the one *response* worth
   retrying; every other error response is a final answer *)
let saturated_response doc =
  match (member "ok" doc, member "error" doc) with
  | Some (Bool false), Some (Str "saturated") -> true
  | _ -> false

let default_attempts = 5

(* client-side trace ids: 16 hex chars, unique enough to follow one
   request through a merged server trace *)
let trace_counter = Atomic.make 0

let mint_trace_id () =
  let d =
    Digest.string
      (Printf.sprintf "trace:%d:%.9f:%d" (Unix.getpid ())
         (Unix.gettimeofday ())
         (Atomic.fetch_and_add trace_counter 1))
  in
  String.sub (Digest.to_hex d) 0 16

let request_endpoint ?(attempts = default_attempts) ?(backoff = 0.05) ?budget
    ?(jitter_seed = 0) ~endpoint doc =
  (* every client request carries a trace id; retries reuse it, so the
     server trace shows one logical request across attempts *)
  let doc =
    match doc with
    | Obj members when not (List.mem_assoc "trace" members) ->
        Obj (members @ [ ("trace", Str (mint_trace_id ())) ])
    | doc -> doc
  in
  let attempts = max 1 attempts in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  (* exponential backoff with deterministic jitter in [0.5, 1.5) of the
     nominal step, clipped to whatever is left of the budget *)
  let pause attempt =
    let d = Digest.string (Printf.sprintf "retry:%d:%d" jitter_seed attempt) in
    let u =
      float_of_int ((Char.code d.[0] * 256) + Char.code d.[1]) /. 65536.0
    in
    let nominal = backoff *. (2.0 ** float_of_int (attempt - 1)) in
    let s = nominal *. (0.5 +. u) in
    let s =
      match budget with
      | Some b -> Float.min s (Float.max 0.0 (b -. (Unix.gettimeofday () -. t0)))
      | None -> s
    in
    if s > 0.0 then Unix.sleepf s
  in
  let rec go attempt =
    let retriable = attempt < attempts && not (over_budget ()) in
    match one_request_endpoint ~endpoint doc with
    | response when saturated_response response && retriable ->
        pause attempt;
        go (attempt + 1)
    | response -> response
    | exception e when retryable_exn e && retriable ->
        pause attempt;
        go (attempt + 1)
  in
  go 1

let request ?attempts ?backoff ?budget ?jitter_seed ~socket doc =
  request_endpoint ?attempts ?backoff ?budget ?jitter_seed
    ~endpoint:(Transport.Unix_path socket) doc
