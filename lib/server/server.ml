(* Concurrency shape: the accept loop and one OS thread per connection
   do only I/O and pool bookkeeping; actual evaluation runs on the
   pool's domains. Threads (not domains) are the right tool on the
   connection side — they're cheap, they block on reads, and they share
   the process's one listening socket and stop flag. *)

let max_frame = 16 * 1024 * 1024
let protocol_version = 1

(* framed I/O: 4-byte big-endian length, then the JSON payload *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then failwith "connection closed mid-frame";
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None (* clean EOF between frames *)
  | n ->
      if n < 4 then really_read fd hdr n (4 - n);
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        failwith (Printf.sprintf "frame length %d out of range" len);
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then failwith "response exceeds max_frame";
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_be msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd msg off remaining in
      go (off + n) (remaining - n)
    end
  in
  go 0 (4 + len)

open Lg_support.Json_out

let error_response msg extra = Obj ([ ("ok", Bool false); ("error", Str msg) ] @ extra)

let outcome_response (o : Batch.outcome) =
  Obj
    [
      ("ok", Bool o.Batch.o_ok);
      ("id", Str o.Batch.o_id);
      ("op", Str o.Batch.o_op);
      ("file", Str o.Batch.o_file);
      ("exit", int o.Batch.o_exit);
      ( "error",
        match o.Batch.o_error with Some m -> Str m | None -> Null );
      ("payload", o.Batch.o_payload);
    ]

(* Per-tenant (per session digest) accounting: job and failure counts
   by exit class plus queue-wait/service time totals, one row per digest
   ever served. The cache columns and quarantine strikes live in the
   Session cache and are joined in at snapshot time. Supervision-failed
   jobs (a crashed worker cannot report its split) count toward jobs and
   failures but not toward the time totals. *)
type tenant_stat = {
  mutable tn_label : string;
  mutable tn_jobs : int;
  mutable tn_ok : int;
  mutable tn_failures : (int * int) list;  (* exit code -> count *)
  mutable tn_queue_wait : float;
  mutable tn_service : float;
}

type tenants = {
  tn_lock : Mutex.t;
  tn_table : (string, tenant_stat) Hashtbl.t;
}

let tenants_create () =
  { tn_lock = Mutex.create (); tn_table = Hashtbl.create 16 }

let tenants_charge tn ~digest ~label ~ok ~exit_code ~queue_wait ~service =
  if digest <> "" then begin
    Mutex.lock tn.tn_lock;
    let row =
      match Hashtbl.find_opt tn.tn_table digest with
      | Some row -> row
      | None ->
          let row =
            {
              tn_label = label;
              tn_jobs = 0;
              tn_ok = 0;
              tn_failures = [];
              tn_queue_wait = 0.0;
              tn_service = 0.0;
            }
          in
          Hashtbl.replace tn.tn_table digest row;
          row
    in
    if label <> "" then row.tn_label <- label;
    row.tn_jobs <- row.tn_jobs + 1;
    if ok then row.tn_ok <- row.tn_ok + 1
    else
      row.tn_failures <-
        (match List.assoc_opt exit_code row.tn_failures with
        | Some n ->
            (exit_code, n + 1) :: List.remove_assoc exit_code row.tn_failures
        | None -> (exit_code, 1) :: row.tn_failures);
    row.tn_queue_wait <- row.tn_queue_wait +. queue_wait;
    row.tn_service <- row.tn_service +. service;
    Mutex.unlock tn.tn_lock
  end

let tenants_snapshot tn =
  Mutex.lock tn.tn_lock;
  let rows =
    Hashtbl.fold
      (fun digest row acc ->
        ( digest,
          row.tn_label,
          row.tn_jobs,
          row.tn_ok,
          List.sort compare row.tn_failures,
          row.tn_queue_wait,
          row.tn_service )
        :: acc)
      tn.tn_table []
  in
  Mutex.unlock tn.tn_lock;
  List.sort (fun (_, a, _, _, _, _, _) (_, b, _, _, _, _, _) -> compare a b) rows

type state = {
  pool : Pool.t;
  sessions : Session.cache;
  metrics : Lg_support.Metrics.t;
  tracer : Lg_support.Trace.t;  (* run-wide; requests absorb into it *)
  events : Lg_support.Eventlog.t;  (* the flight recorder *)
  postmortem_dir : string option;
  pm_counter : int Atomic.t;  (* unique dump filenames *)
  tenants : tenants;
  incremental : Batch.incremental option;
  chaos : Chaos.t option;
  deadline : float option;  (* default budget for job/update ops *)
  started : float;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
}

(* The [update] op body, run on a pool domain like a job: parse the
   inline source, diff/propagate against the document's cached state
   (when --incremental is on), answer outputs + evaluation-mode
   statistics. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tenant_session st = function
  | Jobfile.Language lang -> Session.language_session st.sessions lang
  | Jobfile.Grammar path ->
      Session.translator_session st.sessions ~file:path
        ~source:(read_file path) ()

let run_update st ~tenant ~doc ~source =
  match tenant_session st tenant with
  | exception Failure msg -> error_response msg []
  | exception Sys_error msg -> error_response msg []
  | session -> (
      let translator =
        match session.Session.s_payload with
        | Session.Translator t -> t
        | Session.Artifact _ -> assert false
      in
      let diag = Lg_support.Diag.create () in
      match
        Linguist.Translator.tree_of_source translator ~file:doc ~diag source
      with
      | None ->
          error_response
            (Linguist.Listing.errors_only ~source ~file:doc diag)
            []
      | Some tree ->
          let inc =
            Option.value st.incremental ~default:Batch.default_incremental
          in
          let config =
            {
              Lg_incremental.Incr.default_config with
              threshold = inc.Batch.inc_threshold;
              spill =
                (if inc.Batch.inc_spill then Some Lg_apt.Aptfile.Mem else None);
            }
          in
          let plan = Linguist.Translator.plan translator in
          let engine_options = Linguist.Engine.default_options in
          let result =
            match st.incremental with
            | None ->
                (* serving statelessly: correct, just not incremental *)
                fst
                  (Lg_incremental.Incr.update config ~plan ~engine_options
                     ~tree)
            | Some _ ->
                let slot =
                  Session.doc_slot st.sessions ~digest:session.Session.s_digest
                    ~doc
                in
                Mutex.lock slot.Session.doc_lock;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock slot.Session.doc_lock)
                  (fun () ->
                    let result, next =
                      Lg_incremental.Incr.update ?state:slot.Session.doc_state
                        config ~plan ~engine_options ~tree
                    in
                    slot.Session.doc_state <- next;
                    result)
          in
          let mode_json =
            match result.Lg_incremental.Incr.mode with
            | Lg_incremental.Incr.Fresh { fired } ->
                Obj [ ("kind", Str "fresh"); ("fired", int fired) ]
            | Lg_incremental.Incr.Incremental
                { reused; fresh; fired; waves; changed } ->
                Obj
                  [
                    ("kind", Str "incremental");
                    ("reused_nodes", int reused);
                    ("fresh_nodes", int fresh);
                    ("fired", int fired);
                    ("waves", int waves);
                    ("changed", int changed);
                  ]
            | Lg_incremental.Incr.Fallback { reason; churn } ->
                Obj
                  [
                    ("kind", Str "fallback");
                    ("reason", Str reason);
                    ("churn", Num churn);
                  ]
          in
          Obj
            [
              ("ok", Bool true);
              ("session", Str session.Session.s_digest);
              ("doc", Str doc);
              ( "outputs",
                Obj
                  (List.map
                     (fun (name, v) ->
                       (name, Str (Lg_support.Value.to_string v)))
                     result.Lg_incremental.Incr.outputs) );
              ("tree_size", int result.Lg_incremental.Incr.tree_size);
              ("incremental", mode_json);
            ])

let info_json (i : Session.info) =
  Obj
    [
      ("digest", Str i.Session.i_digest);
      ("label", Str i.Session.i_label);
      ("weight", Num i.Session.i_weight);
      ("build_seconds", Num i.Session.i_build_seconds);
      ("age_seconds", Num i.Session.i_age);
      ("idle_seconds", Num i.Session.i_idle);
      ("docs", int i.Session.i_docs);
    ]

let quarantined_json st =
  Arr
    (List.map
       (fun (digest, label, strikes) ->
         Obj
           [
             ("digest", Str digest);
             ("label", Str label);
             ("strikes", int strikes);
           ])
       (Session.quarantined st.sessions))

(* a supervision failure on an op without a jobfile entry (update):
   typed errors keep their exit code in the response *)
let supervised_error e extra =
  match e with
  | Server_error.Error se ->
      error_response (Server_error.to_string se)
        (("exit", int (Server_error.exit_code se)) :: extra)
  | e -> error_response (Printexc.to_string e) extra

(* the accounting digest of an [update] op's tenant — the same key
   Batch.culprit answers for jobfile entries *)
let update_tenant_digest = function
  | Jobfile.Language lang ->
      Some (Session.digest ~kind:"language" ~source:lang, "language:" ^ lang)
  | Jobfile.Grammar path -> (
      match read_file path with
      | source ->
          Some
            ( Session.digest ~kind:"translator" ~source,
              "translator:" ^ Filename.basename path )
      | exception _ -> None)

let safe_filename id =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
      | _ -> '_')
    id

(* The flight-recorder dump: when the supervision layer fails a job with
   a typed worker_crashed/deadline_exceeded (exit 51/50), the job's
   recent lifecycle events leave the ring as a post-mortem artifact next
   to the typed diagnostic. Quarantine refusals (52) are admission
   control, not crashes — no dump. *)
let write_postmortem st ~job_id ~trace e =
  match (st.postmortem_dir, e) with
  | ( Some dir,
      Server_error.Error
        ((Server_error.Deadline_exceeded _ | Server_error.Worker_crashed _) as
         se) ) -> (
      let doc =
        Lg_support.Eventlog.postmortem_json st.events ~job:job_id
          ~reason:(Server_error.class_name se)
          ~exit_code:(Server_error.exit_code se)
          ~detail:(Server_error.to_string se) ~trace
      in
      let path =
        Filename.concat dir
          (Printf.sprintf "postmortem-%s-%d.json" (safe_filename job_id)
             (Atomic.fetch_and_add st.pm_counter 1))
      in
      try
        let oc = open_out path in
        output_string oc (to_string ~pretty:true doc);
        output_char oc '\n';
        close_out oc
      with Sys_error _ -> ())
  | _ -> ()

(* session-hit/build and pass-k lifecycle events, mined from the spans
   the job just recorded into the request tracer past [mark] — the
   evaluator and session cache need no event-log plumbing of their own *)
let record_lifecycle_events st ~trace ~job ~mark rt =
  if Lg_support.Eventlog.enabled st.events && Lg_support.Trace.enabled rt then
    List.filteri (fun i _ -> i >= mark) (Lg_support.Trace.spans rt)
    |> List.iter (fun (sp : Lg_support.Trace.span) ->
           let record kind =
             Lg_support.Eventlog.record st.events ~trace
               ~fields:
                 [
                   ("name", Str sp.Lg_support.Trace.sp_name);
                   ("seconds", Num sp.Lg_support.Trace.sp_dur);
                 ]
               ~job kind
           in
           match sp.Lg_support.Trace.sp_cat with
           | "pass" -> record "pass"
           | "session" -> record sp.Lg_support.Trace.sp_name
           | _ -> ())

(* echo the client-minted trace id on the response, closing the loop *)
let with_trace_id trace response =
  match response with
  | Obj members when trace <> "" -> Obj (members @ [ ("trace", Str trace) ])
  | response -> response

let handle_request st ~rt ~trace doc =
  match member "op" doc with
  | Some (Str "ping") ->
      Obj
        [
          ("ok", Bool true);
          ("server", Str "linguist");
          ("protocol", int protocol_version);
          ("workers", int (Pool.workers st.pool));
        ]
  | Some (Str "metrics") -> (
      match member "format" doc with
      | Some (Str "prometheus") ->
          Obj
            [
              ("ok", Bool true);
              ( "prometheus",
                Str
                  (Format.asprintf "%a" Lg_support.Metrics.pp_prometheus
                     st.metrics) );
            ]
      | Some (Str "json") | None ->
          Obj
            [ ("ok", Bool true); ("metrics", Lg_support.Metrics.to_json st.metrics) ]
      | Some _ -> error_response "unknown metrics format" [])
  | Some (Str "shutdown") ->
      Atomic.set st.stop true;
      Obj [ ("ok", Bool true); ("stopping", Bool true) ]
  | Some (Str "health") ->
      if Atomic.get st.draining then
        error_response "draining" [ ("status", Str "draining") ]
      else
        Obj
          [
            ("ok", Bool true);
            ("status", Str "serving");
            ("workers", int (Pool.workers st.pool));
            ("workers_live", int (Pool.live_workers st.pool));
            ("workers_parked", int (Pool.parked_workers st.pool));
            ("worker_restarts", int (Pool.restart_count st.pool));
            ("queue_depth", int (Pool.queue_depth st.pool));
            ("queue_peak", int (Pool.queue_peak st.pool));
            ("queue_capacity", int (Pool.capacity st.pool));
            ("sessions", int (Session.length st.sessions));
            ("quarantined", quarantined_json st);
            ("uptime_seconds", Num (Unix.gettimeofday () -. st.started));
          ]
  | Some (Str "tenants") ->
      Obj
        [
          ("ok", Bool true);
          ( "tenants",
            Arr
              (List.map
                 (fun (digest, label, jobs, ok, failures, queue_wait, service) ->
                   let hits, misses, evictions =
                     Session.tenant_stats st.sessions ~digest
                   in
                   Obj
                     [
                       ("digest", Str digest);
                       ("label", Str label);
                       ("jobs", int jobs);
                       ("ok", int ok);
                       ( "failures",
                         Obj
                           (List.map
                              (fun (code, n) -> (string_of_int code, int n))
                              failures) );
                       ("queue_wait_seconds", Num queue_wait);
                       ("service_seconds", Num service);
                       ( "cache",
                         Obj
                           [
                             ("hits", int hits);
                             ("misses", int misses);
                             ("evictions", int evictions);
                           ] );
                       ( "strikes",
                         int (Session.strike_count st.sessions ~digest) );
                       ( "quarantined",
                         Bool (Session.is_quarantined st.sessions ~digest) );
                     ])
                 (tenants_snapshot st.tenants)) );
        ]
  | Some (Str "drain") ->
      Atomic.set st.draining true;
      Obj
        [
          ("ok", Bool true);
          ("draining", Bool true);
          ("queue_depth", int (Pool.queue_depth st.pool));
        ]
  | Some (Str "job") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "job") -> (
      match member "job" doc with
      | None -> error_response "missing \"job\" member" []
      | Some jdoc -> (
          match Jobfile.job_of_json ~index:0 jdoc with
          | Error msg -> error_response msg []
          | Ok job -> (
              let deadline =
                match job.Jobfile.j_deadline with
                | Some _ as d -> d
                | None -> st.deadline
              in
              let label = job.Jobfile.j_id in
              Lg_support.Eventlog.record st.events ~trace
                ~fields:
                  [
                    ("op", Str (Jobfile.op_name job.Jobfile.j_op));
                    ("file", Str job.Jobfile.j_file);
                  ]
                ~job:label "submitted";
              Lg_support.Trace.begin_span rt ~cat:"queue" "queue.wait";
              let submitted = Unix.gettimeofday () in
              (* charge exactly once: the thunk's success path and the
                 supervision path can both reach for the ledger (a job
                 that finishes just as its watchdog fires) *)
              let charged = Atomic.make false in
              let charge ~ok ~exit_code ~queue_wait ~service =
                if not (Atomic.exchange charged true) then
                  match Batch.culprit job with
                  | Some (digest, tenant_label) ->
                      tenants_charge st.tenants ~digest ~label:tenant_label
                        ~ok ~exit_code ~queue_wait ~service
                  | None -> ()
              in
              match
                Pool.submit ~label ?deadline st.pool (fun () ->
                    let dequeued = Unix.gettimeofday () in
                    Lg_support.Trace.end_span rt ();
                    Lg_support.Eventlog.record st.events ~trace
                      ~fields:
                        [ ("queue_wait_seconds", Num (dequeued -. submitted)) ]
                      ~job:label "dequeued";
                    (* the request tracer becomes ambient for the job so
                       session hit/build and evaluator pass spans land on
                       this request's story *)
                    let prev = Lg_support.Trace.ambient () in
                    Lg_support.Trace.install rt;
                    Fun.protect
                      ~finally:(fun () -> Lg_support.Trace.install prev)
                      (fun () ->
                        Lg_support.Trace.begin_span rt ~cat:"serve" "service";
                        Fun.protect
                          ~finally:(fun () -> Lg_support.Trace.end_span rt ())
                          (fun () ->
                            Batch.quarantine_gate ~sessions:st.sessions job;
                            (match st.chaos with
                            | Some _ ->
                                Lg_support.Trace.span rt ~cat:"chaos"
                                  "chaos.gate" (fun () ->
                                    Batch.chaos_gate ?chaos:st.chaos job)
                            | None -> ());
                            Lg_support.Eventlog.record st.events ~trace
                              ~job:label "started";
                            let mark = Lg_support.Trace.span_count rt in
                            let outcome =
                              Batch.run_job ~sessions:st.sessions
                                ?incremental:st.incremental job
                            in
                            record_lifecycle_events st ~trace ~job:label ~mark
                              rt;
                            let finished = Unix.gettimeofday () in
                            Lg_support.Eventlog.record st.events ~trace
                              ~fields:
                                [
                                  ("exit", int outcome.Batch.o_exit);
                                  ("seconds", Num (finished -. dequeued));
                                ]
                              ~job:label
                              (if outcome.Batch.o_ok then "finished"
                               else "failed");
                            charge ~ok:outcome.Batch.o_ok
                              ~exit_code:outcome.Batch.o_exit
                              ~queue_wait:(dequeued -. submitted)
                              ~service:(finished -. dequeued);
                            outcome)))
              with
              | Error { Pool.rj_depth; rj_capacity } ->
                  Lg_support.Trace.end_span rt ();
                  Lg_support.Eventlog.record st.events ~trace
                    ~fields:[ ("exit", int 1); ("error", Str "saturated") ]
                    ~job:label "failed";
                  error_response "saturated"
                    [
                      ("queue_depth", int rj_depth);
                      ("capacity", int rj_capacity);
                    ]
              | Ok handle -> (
                  match Pool.await handle with
                  | Ok outcome ->
                      with_trace_id trace (outcome_response outcome)
                  | Error e ->
                      let outcome =
                        Batch.failure_outcome ~metrics:st.metrics
                          ~sessions:st.sessions job e
                      in
                      Lg_support.Eventlog.record st.events ~trace
                        ~fields:
                          [
                            ("exit", int outcome.Batch.o_exit);
                            ( "error",
                              match outcome.Batch.o_error with
                              | Some m -> Str m
                              | None -> Null );
                          ]
                        ~job:label "failed";
                      charge ~ok:false ~exit_code:outcome.Batch.o_exit
                        ~queue_wait:0.0 ~service:0.0;
                      write_postmortem st ~job_id:label ~trace e;
                      with_trace_id trace (outcome_response outcome)))))
  | Some (Str "update") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "update") -> (
      let str name =
        match member name doc with Some (Str s) -> Some s | _ -> None
      in
      let tenant =
        match (str "language", str "grammar") with
        | Some _, Some _ -> Error "\"language\" and \"grammar\" are mutually exclusive"
        | Some lang, None -> Ok (Jobfile.Language lang)
        | None, Some path -> Ok (Jobfile.Grammar path)
        | None, None ->
            Error "op \"update\" needs a \"language\" or a \"grammar\""
      in
      match (tenant, str "source") with
      | Error msg, _ -> error_response msg []
      | _, None -> error_response "op \"update\" needs a \"source\"" []
      | Ok tenant, Some source -> (
          let tenant_name =
            match tenant with
            | Jobfile.Language lang -> lang
            | Jobfile.Grammar path -> path
          in
          let doc_id =
            Option.value (str "doc") ~default:("<" ^ tenant_name ^ ">")
          in
          let label = "update:" ^ doc_id in
          Lg_support.Eventlog.record st.events ~trace
            ~fields:[ ("op", Str "update"); ("doc", Str doc_id) ]
            ~job:label "submitted";
          Lg_support.Trace.begin_span rt ~cat:"queue" "queue.wait";
          let submitted = Unix.gettimeofday () in
          let charged = Atomic.make false in
          let charge ~ok ~exit_code ~queue_wait ~service =
            if not (Atomic.exchange charged true) then
              match update_tenant_digest tenant with
              | Some (digest, tenant_label) ->
                  tenants_charge st.tenants ~digest ~label:tenant_label ~ok
                    ~exit_code ~queue_wait ~service
              | None -> ()
          in
          match
            Pool.submit ~label ?deadline:st.deadline st.pool (fun () ->
                let dequeued = Unix.gettimeofday () in
                Lg_support.Trace.end_span rt ();
                Lg_support.Eventlog.record st.events ~trace
                  ~fields:
                    [ ("queue_wait_seconds", Num (dequeued -. submitted)) ]
                  ~job:label "dequeued";
                let prev = Lg_support.Trace.ambient () in
                Lg_support.Trace.install rt;
                Fun.protect
                  ~finally:(fun () -> Lg_support.Trace.install prev)
                  (fun () ->
                    Lg_support.Trace.begin_span rt ~cat:"serve" "service";
                    Fun.protect
                      ~finally:(fun () -> Lg_support.Trace.end_span rt ())
                      (fun () ->
                        Lg_support.Eventlog.record st.events ~trace ~job:label
                          "started";
                        let mark = Lg_support.Trace.span_count rt in
                        let response =
                          run_update st ~tenant ~doc:doc_id ~source
                        in
                        record_lifecycle_events st ~trace ~job:label ~mark rt;
                        let finished = Unix.gettimeofday () in
                        let ok =
                          match member "ok" response with
                          | Some (Bool b) -> b
                          | _ -> false
                        in
                        Lg_support.Eventlog.record st.events ~trace
                          ~fields:
                            [
                              ("exit", int (if ok then 0 else 1));
                              ("seconds", Num (finished -. dequeued));
                            ]
                          ~job:label
                          (if ok then "finished" else "failed");
                        charge ~ok
                          ~exit_code:(if ok then 0 else 1)
                          ~queue_wait:(dequeued -. submitted)
                          ~service:(finished -. dequeued);
                        response)))
          with
          | Error { Pool.rj_depth; rj_capacity } ->
              Lg_support.Trace.end_span rt ();
              Lg_support.Eventlog.record st.events ~trace
                ~fields:[ ("exit", int 1); ("error", Str "saturated") ]
                ~job:label "failed";
              error_response "saturated"
                [ ("queue_depth", int rj_depth); ("capacity", int rj_capacity) ]
          | Ok handle -> (
              match Pool.await handle with
              | Ok response -> with_trace_id trace response
              | Error e ->
                  let exit_code =
                    match e with
                    | Server_error.Error se -> Server_error.exit_code se
                    | _ -> 1
                  in
                  Lg_support.Eventlog.record st.events ~trace
                    ~fields:[ ("exit", int exit_code) ]
                    ~job:label "failed";
                  charge ~ok:false ~exit_code ~queue_wait:0.0 ~service:0.0;
                  write_postmortem st ~job_id:label ~trace e;
                  with_trace_id trace (supervised_error e []))))
  | Some (Str "evict") -> (
      let digest =
        match (member "digest" doc, member "language" doc) with
        | Some (Str d), _ -> Some d
        | None, Some (Str lang) ->
            Some (Session.digest ~kind:"language" ~source:lang)
        | _, _ -> None
      in
      match digest with
      | None -> error_response "op \"evict\" needs a \"digest\" or \"language\"" []
      | Some d ->
          Obj
            [
              ("ok", Bool true);
              ("evicted", Bool (Session.evict st.sessions ~digest:d));
            ])
  | Some (Str "clear") ->
      Obj [ ("ok", Bool true); ("cleared", int (Session.clear st.sessions)) ]
  | Some (Str "sessions") ->
      Obj
        [
          ("ok", Bool true);
          ("sessions", Arr (List.map info_json (Session.entries_info st.sessions)));
        ]
  | Some (Str other) -> error_response (Printf.sprintf "unknown op %S" other) []
  | _ -> error_response "missing \"op\" member" []

let connection_loop st fd =
  let observed =
    Lg_support.Trace.enabled st.tracer || Lg_support.Eventlog.enabled st.events
  in
  let rec go () =
    match read_frame fd with
    | None -> ()
    | Some payload ->
        let doc =
          match parse payload with
          | doc -> Ok doc
          | exception Failure msg -> Error msg
        in
        let op, trace =
          match doc with
          | Ok doc ->
              ( (match member "op" doc with Some (Str op) -> op | _ -> "?"),
                match member "trace" doc with Some (Str t) -> t | _ -> "" )
          | Error _ -> ("?", "")
        in
        (* one private tracer per request; the client-minted trace id
           rides on the request span, and the finished story is absorbed
           into the run-wide tracer for --trace-out *)
        let rt =
          if observed then Lg_support.Trace.create () else Lg_support.Trace.null
        in
        Lg_support.Trace.begin_span rt ~cat:"request" ("request:" ^ op);
        if trace <> "" then
          Lg_support.Trace.add_args rt
            [ ("trace", Lg_support.Trace.Str trace) ];
        let finish_rt () =
          (* a wedged/deadlined job can leave queue.wait or service open *)
          while Lg_support.Trace.open_depth rt > 0 do
            Lg_support.Trace.end_span rt ()
          done;
          Lg_support.Trace.absorb st.tracer rt
        in
        let continue =
          Fun.protect ~finally:finish_rt (fun () ->
              let response =
                match doc with
                | Error msg -> error_response ("bad request: " ^ msg) []
                | Ok doc -> handle_request st ~rt ~trace doc
              in
              (* a [drop] chaos roll closes the connection instead of
                 answering — the work is already done; the retrying
                 client's recovery path is what's under test *)
              let dropped =
                match st.chaos with
                | Some c when Chaos.drop_response c -> true
                | _ -> false
              in
              if dropped then false
              else begin
                Lg_support.Trace.span rt ~cat:"request" "response.write"
                  (fun () -> write_frame fd (to_string response));
                not (Atomic.get st.stop)
              end)
        in
        if continue then go ()
  in
  (* EPIPE/ECONNRESET from a client that hung up mid-response (SIGPIPE
     is ignored process-wide by [serve]) ends this connection only *)
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try go () with Failure _ | Unix.Unix_error _ -> ())

let serve ?queue_capacity ?session_capacity ?session_ttl ?quarantine_after
    ?metrics ?tracer ?events ?postmortem_dir ?incremental ?chaos ?deadline
    ~workers ~socket () =
  (* a client that vanishes mid-response must cost us an EPIPE, not the
     process; per-connection handling turns it into a closed connection *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let metrics =
    match metrics with Some m -> m | None -> Lg_support.Metrics.create ()
  in
  let tracer =
    match tracer with Some t -> t | None -> Lg_support.Trace.null
  in
  let events =
    match events with Some e -> e | None -> Lg_support.Eventlog.create ()
  in
  (match postmortem_dir with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | None -> ());
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 4 * max 1 workers
  in
  let st =
    {
      pool = Pool.create ~metrics ~workers ~queue_capacity ();
      sessions =
        Session.create_cache ?capacity:session_capacity ?ttl:session_ttl
          ?quarantine_after ();
      metrics;
      tracer;
      events;
      postmortem_dir;
      pm_counter = Atomic.make 0;
      tenants = tenants_create ();
      incremental;
      chaos;
      deadline;
      started = Unix.gettimeofday ();
      stop = Atomic.make false;
      draining = Atomic.make false;
    }
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 16;
  let threads = ref [] in
  let finish () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    List.iter Thread.join !threads;
    Pool.drain st.pool;
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish @@ fun () ->
  while not (Atomic.get st.stop) do
    (* wake up periodically so a shutdown requested on some connection
       thread stops the accept loop too *)
    match Unix.select [ listener ] [] [] 0.2 with
    | [ _ ], _, _ ->
        let fd, _ = Unix.accept listener in
        threads := Thread.create (connection_loop st) fd :: !threads
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let one_request ~socket doc =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_frame fd (to_string doc);
      match read_frame fd with
      | Some payload -> parse payload
      | None -> failwith "server closed the connection without a response")

(* what the retrying client treats as transient: the server not (yet)
   there, a connection torn down mid-exchange, or a dropped response *)
let retryable_exn = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
        | Unix.ENOTCONN ),
        _,
        _ ) ->
      true
  | Failure msg ->
      String.equal msg "server closed the connection without a response"
      || String.equal msg "connection closed mid-frame"
  | _ -> false

(* the queue-full backpressure signal — the one *response* worth
   retrying; every other error response is a final answer *)
let saturated_response doc =
  match (member "ok" doc, member "error" doc) with
  | Some (Bool false), Some (Str "saturated") -> true
  | _ -> false

let default_attempts = 5

(* client-side trace ids: 16 hex chars, unique enough to follow one
   request through a merged server trace *)
let trace_counter = Atomic.make 0

let mint_trace_id () =
  let d =
    Digest.string
      (Printf.sprintf "trace:%d:%.9f:%d" (Unix.getpid ())
         (Unix.gettimeofday ())
         (Atomic.fetch_and_add trace_counter 1))
  in
  String.sub (Digest.to_hex d) 0 16

let request ?(attempts = default_attempts) ?(backoff = 0.05) ?budget
    ?(jitter_seed = 0) ~socket doc =
  (* every client request carries a trace id; retries reuse it, so the
     server trace shows one logical request across attempts *)
  let doc =
    match doc with
    | Obj members when not (List.mem_assoc "trace" members) ->
        Obj (members @ [ ("trace", Str (mint_trace_id ())) ])
    | doc -> doc
  in
  let attempts = max 1 attempts in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  (* exponential backoff with deterministic jitter in [0.5, 1.5) of the
     nominal step, clipped to whatever is left of the budget *)
  let pause attempt =
    let d = Digest.string (Printf.sprintf "retry:%d:%d" jitter_seed attempt) in
    let u =
      float_of_int ((Char.code d.[0] * 256) + Char.code d.[1]) /. 65536.0
    in
    let nominal = backoff *. (2.0 ** float_of_int (attempt - 1)) in
    let s = nominal *. (0.5 +. u) in
    let s =
      match budget with
      | Some b -> Float.min s (Float.max 0.0 (b -. (Unix.gettimeofday () -. t0)))
      | None -> s
    in
    if s > 0.0 then Unix.sleepf s
  in
  let rec go attempt =
    let retriable = attempt < attempts && not (over_budget ()) in
    match one_request ~socket doc with
    | response when saturated_response response && retriable ->
        pause attempt;
        go (attempt + 1)
    | response -> response
    | exception e when retryable_exn e && retriable ->
        pause attempt;
        go (attempt + 1)
  in
  go 1
