(* Concurrency shape: the accept loop and one OS thread per connection
   do only I/O and pool bookkeeping; actual evaluation runs on the
   pool's domains. Threads (not domains) are the right tool on the
   connection side — they're cheap, they block on reads, and they share
   the process's one listening socket and stop flag. *)

let max_frame = 16 * 1024 * 1024
let protocol_version = 1

(* framed I/O: 4-byte big-endian length, then the JSON payload *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then failwith "connection closed mid-frame";
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None (* clean EOF between frames *)
  | n ->
      if n < 4 then really_read fd hdr n (4 - n);
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        failwith (Printf.sprintf "frame length %d out of range" len);
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then failwith "response exceeds max_frame";
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_be msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd msg off remaining in
      go (off + n) (remaining - n)
    end
  in
  go 0 (4 + len)

open Lg_support.Json_out

let error_response msg extra = Obj ([ ("ok", Bool false); ("error", Str msg) ] @ extra)

let outcome_response (o : Batch.outcome) =
  Obj
    [
      ("ok", Bool o.Batch.o_ok);
      ("id", Str o.Batch.o_id);
      ("op", Str o.Batch.o_op);
      ("file", Str o.Batch.o_file);
      ("exit", int o.Batch.o_exit);
      ( "error",
        match o.Batch.o_error with Some m -> Str m | None -> Null );
      ("payload", o.Batch.o_payload);
    ]

type state = {
  pool : Pool.t;
  sessions : Session.cache;
  metrics : Lg_support.Metrics.t;
  incremental : Batch.incremental option;
  chaos : Chaos.t option;
  deadline : float option;  (* default budget for job/update ops *)
  started : float;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
}

(* The [update] op body, run on a pool domain like a job: parse the
   inline source, diff/propagate against the document's cached state
   (when --incremental is on), answer outputs + evaluation-mode
   statistics. *)
let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let tenant_session st = function
  | Jobfile.Language lang -> Session.language_session st.sessions lang
  | Jobfile.Grammar path ->
      Session.translator_session st.sessions ~file:path
        ~source:(read_file path) ()

let run_update st ~tenant ~doc ~source =
  match tenant_session st tenant with
  | exception Failure msg -> error_response msg []
  | exception Sys_error msg -> error_response msg []
  | session -> (
      let translator =
        match session.Session.s_payload with
        | Session.Translator t -> t
        | Session.Artifact _ -> assert false
      in
      let diag = Lg_support.Diag.create () in
      match
        Linguist.Translator.tree_of_source translator ~file:doc ~diag source
      with
      | None ->
          error_response
            (Linguist.Listing.errors_only ~source ~file:doc diag)
            []
      | Some tree ->
          let inc =
            Option.value st.incremental ~default:Batch.default_incremental
          in
          let config =
            {
              Lg_incremental.Incr.default_config with
              threshold = inc.Batch.inc_threshold;
              spill =
                (if inc.Batch.inc_spill then Some Lg_apt.Aptfile.Mem else None);
            }
          in
          let plan = Linguist.Translator.plan translator in
          let engine_options = Linguist.Engine.default_options in
          let result =
            match st.incremental with
            | None ->
                (* serving statelessly: correct, just not incremental *)
                fst
                  (Lg_incremental.Incr.update config ~plan ~engine_options
                     ~tree)
            | Some _ ->
                let slot =
                  Session.doc_slot st.sessions ~digest:session.Session.s_digest
                    ~doc
                in
                Mutex.lock slot.Session.doc_lock;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock slot.Session.doc_lock)
                  (fun () ->
                    let result, next =
                      Lg_incremental.Incr.update ?state:slot.Session.doc_state
                        config ~plan ~engine_options ~tree
                    in
                    slot.Session.doc_state <- next;
                    result)
          in
          let mode_json =
            match result.Lg_incremental.Incr.mode with
            | Lg_incremental.Incr.Fresh { fired } ->
                Obj [ ("kind", Str "fresh"); ("fired", int fired) ]
            | Lg_incremental.Incr.Incremental
                { reused; fresh; fired; waves; changed } ->
                Obj
                  [
                    ("kind", Str "incremental");
                    ("reused_nodes", int reused);
                    ("fresh_nodes", int fresh);
                    ("fired", int fired);
                    ("waves", int waves);
                    ("changed", int changed);
                  ]
            | Lg_incremental.Incr.Fallback { reason; churn } ->
                Obj
                  [
                    ("kind", Str "fallback");
                    ("reason", Str reason);
                    ("churn", Num churn);
                  ]
          in
          Obj
            [
              ("ok", Bool true);
              ("session", Str session.Session.s_digest);
              ("doc", Str doc);
              ( "outputs",
                Obj
                  (List.map
                     (fun (name, v) ->
                       (name, Str (Lg_support.Value.to_string v)))
                     result.Lg_incremental.Incr.outputs) );
              ("tree_size", int result.Lg_incremental.Incr.tree_size);
              ("incremental", mode_json);
            ])

let info_json (i : Session.info) =
  Obj
    [
      ("digest", Str i.Session.i_digest);
      ("label", Str i.Session.i_label);
      ("weight", Num i.Session.i_weight);
      ("build_seconds", Num i.Session.i_build_seconds);
      ("age_seconds", Num i.Session.i_age);
      ("idle_seconds", Num i.Session.i_idle);
      ("docs", int i.Session.i_docs);
    ]

let quarantined_json st =
  Arr
    (List.map
       (fun (digest, label, strikes) ->
         Obj
           [
             ("digest", Str digest);
             ("label", Str label);
             ("strikes", int strikes);
           ])
       (Session.quarantined st.sessions))

(* a supervision failure on an op without a jobfile entry (update):
   typed errors keep their exit code in the response *)
let supervised_error e extra =
  match e with
  | Server_error.Error se ->
      error_response (Server_error.to_string se)
        (("exit", int (Server_error.exit_code se)) :: extra)
  | e -> error_response (Printexc.to_string e) extra

let handle_request st doc =
  match member "op" doc with
  | Some (Str "ping") ->
      Obj
        [
          ("ok", Bool true);
          ("server", Str "linguist");
          ("protocol", int protocol_version);
          ("workers", int (Pool.workers st.pool));
        ]
  | Some (Str "metrics") ->
      Obj [ ("ok", Bool true); ("metrics", Lg_support.Metrics.to_json st.metrics) ]
  | Some (Str "shutdown") ->
      Atomic.set st.stop true;
      Obj [ ("ok", Bool true); ("stopping", Bool true) ]
  | Some (Str "health") ->
      if Atomic.get st.draining then
        error_response "draining" [ ("status", Str "draining") ]
      else
        Obj
          [
            ("ok", Bool true);
            ("status", Str "serving");
            ("workers", int (Pool.workers st.pool));
            ("queue_depth", int (Pool.queue_depth st.pool));
            ("queue_capacity", int (Pool.capacity st.pool));
            ("sessions", int (Session.length st.sessions));
            ("quarantined", quarantined_json st);
            ("uptime_seconds", Num (Unix.gettimeofday () -. st.started));
          ]
  | Some (Str "drain") ->
      Atomic.set st.draining true;
      Obj
        [
          ("ok", Bool true);
          ("draining", Bool true);
          ("queue_depth", int (Pool.queue_depth st.pool));
        ]
  | Some (Str "job") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "job") -> (
      match member "job" doc with
      | None -> error_response "missing \"job\" member" []
      | Some jdoc -> (
          match Jobfile.job_of_json ~index:0 jdoc with
          | Error msg -> error_response msg []
          | Ok job -> (
              let deadline =
                match job.Jobfile.j_deadline with
                | Some _ as d -> d
                | None -> st.deadline
              in
              match
                Pool.submit ~label:job.Jobfile.j_id ?deadline st.pool
                  (fun () ->
                    Batch.quarantine_gate ~sessions:st.sessions job;
                    Batch.chaos_gate ?chaos:st.chaos job;
                    Batch.run_job ~sessions:st.sessions
                      ?incremental:st.incremental job)
              with
              | Error { Pool.rj_depth; rj_capacity } ->
                  error_response "saturated"
                    [
                      ("queue_depth", int rj_depth);
                      ("capacity", int rj_capacity);
                    ]
              | Ok handle -> (
                  match Pool.await handle with
                  | Ok outcome -> outcome_response outcome
                  | Error e ->
                      outcome_response
                        (Batch.failure_outcome ~metrics:st.metrics
                           ~sessions:st.sessions job e)))))
  | Some (Str "update") when Atomic.get st.draining ->
      error_response "draining" []
  | Some (Str "update") -> (
      let str name =
        match member name doc with Some (Str s) -> Some s | _ -> None
      in
      let tenant =
        match (str "language", str "grammar") with
        | Some _, Some _ -> Error "\"language\" and \"grammar\" are mutually exclusive"
        | Some lang, None -> Ok (Jobfile.Language lang)
        | None, Some path -> Ok (Jobfile.Grammar path)
        | None, None ->
            Error "op \"update\" needs a \"language\" or a \"grammar\""
      in
      match (tenant, str "source") with
      | Error msg, _ -> error_response msg []
      | _, None -> error_response "op \"update\" needs a \"source\"" []
      | Ok tenant, Some source -> (
          let tenant_name =
            match tenant with
            | Jobfile.Language lang -> lang
            | Jobfile.Grammar path -> path
          in
          let doc_id =
            Option.value (str "doc") ~default:("<" ^ tenant_name ^ ">")
          in
          match
            Pool.submit ~label:("update:" ^ doc_id) ?deadline:st.deadline
              st.pool
              (fun () -> run_update st ~tenant ~doc:doc_id ~source)
          with
          | Error { Pool.rj_depth; rj_capacity } ->
              error_response "saturated"
                [ ("queue_depth", int rj_depth); ("capacity", int rj_capacity) ]
          | Ok handle -> (
              match Pool.await handle with
              | Ok response -> response
              | Error e -> supervised_error e [])))
  | Some (Str "evict") -> (
      let digest =
        match (member "digest" doc, member "language" doc) with
        | Some (Str d), _ -> Some d
        | None, Some (Str lang) ->
            Some (Session.digest ~kind:"language" ~source:lang)
        | _, _ -> None
      in
      match digest with
      | None -> error_response "op \"evict\" needs a \"digest\" or \"language\"" []
      | Some d ->
          Obj
            [
              ("ok", Bool true);
              ("evicted", Bool (Session.evict st.sessions ~digest:d));
            ])
  | Some (Str "clear") ->
      Obj [ ("ok", Bool true); ("cleared", int (Session.clear st.sessions)) ]
  | Some (Str "sessions") ->
      Obj
        [
          ("ok", Bool true);
          ("sessions", Arr (List.map info_json (Session.entries_info st.sessions)));
        ]
  | Some (Str other) -> error_response (Printf.sprintf "unknown op %S" other) []
  | _ -> error_response "missing \"op\" member" []

let connection_loop st fd =
  let rec go () =
    match read_frame fd with
    | None -> ()
    | Some payload ->
        let response =
          match parse payload with
          | doc -> handle_request st doc
          | exception Failure msg -> error_response ("bad request: " ^ msg) []
        in
        (* a [drop] chaos roll closes the connection instead of
           answering — the work is already done; the retrying client's
           recovery path is what's under test *)
        let dropped =
          match st.chaos with
          | Some c when Chaos.drop_response c -> true
          | _ -> false
        in
        if not dropped then begin
          write_frame fd (to_string response);
          if not (Atomic.get st.stop) then go ()
        end
  in
  (* EPIPE/ECONNRESET from a client that hung up mid-response (SIGPIPE
     is ignored process-wide by [serve]) ends this connection only *)
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try go () with Failure _ | Unix.Unix_error _ -> ())

let serve ?queue_capacity ?session_capacity ?session_ttl ?quarantine_after
    ?metrics ?incremental ?chaos ?deadline ~workers ~socket () =
  (* a client that vanishes mid-response must cost us an EPIPE, not the
     process; per-connection handling turns it into a closed connection *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let metrics =
    match metrics with Some m -> m | None -> Lg_support.Metrics.create ()
  in
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 4 * max 1 workers
  in
  let st =
    {
      pool = Pool.create ~metrics ~workers ~queue_capacity ();
      sessions =
        Session.create_cache ?capacity:session_capacity ?ttl:session_ttl
          ?quarantine_after ();
      metrics;
      incremental;
      chaos;
      deadline;
      started = Unix.gettimeofday ();
      stop = Atomic.make false;
      draining = Atomic.make false;
    }
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 16;
  let threads = ref [] in
  let finish () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    List.iter Thread.join !threads;
    Pool.drain st.pool;
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish @@ fun () ->
  while not (Atomic.get st.stop) do
    (* wake up periodically so a shutdown requested on some connection
       thread stops the accept loop too *)
    match Unix.select [ listener ] [] [] 0.2 with
    | [ _ ], _, _ ->
        let fd, _ = Unix.accept listener in
        threads := Thread.create (connection_loop st) fd :: !threads
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let one_request ~socket doc =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_frame fd (to_string doc);
      match read_frame fd with
      | Some payload -> parse payload
      | None -> failwith "server closed the connection without a response")

(* what the retrying client treats as transient: the server not (yet)
   there, a connection torn down mid-exchange, or a dropped response *)
let retryable_exn = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.EPIPE | Unix.ENOENT
        | Unix.ENOTCONN ),
        _,
        _ ) ->
      true
  | Failure msg ->
      String.equal msg "server closed the connection without a response"
      || String.equal msg "connection closed mid-frame"
  | _ -> false

(* the queue-full backpressure signal — the one *response* worth
   retrying; every other error response is a final answer *)
let saturated_response doc =
  match (member "ok" doc, member "error" doc) with
  | Some (Bool false), Some (Str "saturated") -> true
  | _ -> false

let default_attempts = 5

let request ?(attempts = default_attempts) ?(backoff = 0.05) ?budget
    ?(jitter_seed = 0) ~socket doc =
  let attempts = max 1 attempts in
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match budget with
    | Some b -> Unix.gettimeofday () -. t0 >= b
    | None -> false
  in
  (* exponential backoff with deterministic jitter in [0.5, 1.5) of the
     nominal step, clipped to whatever is left of the budget *)
  let pause attempt =
    let d = Digest.string (Printf.sprintf "retry:%d:%d" jitter_seed attempt) in
    let u =
      float_of_int ((Char.code d.[0] * 256) + Char.code d.[1]) /. 65536.0
    in
    let nominal = backoff *. (2.0 ** float_of_int (attempt - 1)) in
    let s = nominal *. (0.5 +. u) in
    let s =
      match budget with
      | Some b -> Float.min s (Float.max 0.0 (b -. (Unix.gettimeofday () -. t0)))
      | None -> s
    in
    if s > 0.0 then Unix.sleepf s
  in
  let rec go attempt =
    let retriable = attempt < attempts && not (over_budget ()) in
    match one_request ~socket doc with
    | response when saturated_response response && retriable ->
        pause attempt;
        go (attempt + 1)
    | response -> response
    | exception e when retryable_exn e && retriable ->
        pause attempt;
        go (attempt + 1)
  in
  go 1
