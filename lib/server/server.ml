(* Concurrency shape: the accept loop and one OS thread per connection
   do only I/O and pool bookkeeping; actual evaluation runs on the
   pool's domains. Threads (not domains) are the right tool on the
   connection side — they're cheap, they block on reads, and they share
   the process's one listening socket and stop flag. *)

let max_frame = 16 * 1024 * 1024
let protocol_version = 1

(* framed I/O: 4-byte big-endian length, then the JSON payload *)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then failwith "connection closed mid-frame";
      go (off + n) (len - n)
    end
  in
  go off len

let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None (* clean EOF between frames *)
  | n ->
      if n < 4 then really_read fd hdr n (4 - n);
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then
        failwith (Printf.sprintf "frame length %d out of range" len);
      let payload = Bytes.create len in
      really_read fd payload 0 len;
      Some (Bytes.unsafe_to_string payload)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then failwith "response exceeds max_frame";
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_be msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  let rec go off remaining =
    if remaining > 0 then begin
      let n = Unix.write fd msg off remaining in
      go (off + n) (remaining - n)
    end
  in
  go 0 (4 + len)

open Lg_support.Json_out

let error_response msg extra = Obj ([ ("ok", Bool false); ("error", Str msg) ] @ extra)

let outcome_response (o : Batch.outcome) =
  Obj
    [
      ("ok", Bool o.Batch.o_ok);
      ("id", Str o.Batch.o_id);
      ("op", Str o.Batch.o_op);
      ("file", Str o.Batch.o_file);
      ("exit", int o.Batch.o_exit);
      ( "error",
        match o.Batch.o_error with Some m -> Str m | None -> Null );
      ("payload", o.Batch.o_payload);
    ]

type state = {
  pool : Pool.t;
  sessions : Session.cache;
  metrics : Lg_support.Metrics.t;
  stop : bool Atomic.t;
}

let handle_request st doc =
  match member "op" doc with
  | Some (Str "ping") ->
      Obj
        [
          ("ok", Bool true);
          ("server", Str "linguist");
          ("protocol", int protocol_version);
          ("workers", int (Pool.workers st.pool));
        ]
  | Some (Str "metrics") ->
      Obj [ ("ok", Bool true); ("metrics", Lg_support.Metrics.to_json st.metrics) ]
  | Some (Str "shutdown") ->
      Atomic.set st.stop true;
      Obj [ ("ok", Bool true); ("stopping", Bool true) ]
  | Some (Str "job") -> (
      match member "job" doc with
      | None -> error_response "missing \"job\" member" []
      | Some jdoc -> (
          match Jobfile.job_of_json ~index:0 jdoc with
          | Error msg -> error_response msg []
          | Ok job -> (
              match
                Pool.submit st.pool (fun () ->
                    Batch.run_job ~sessions:st.sessions job)
              with
              | Error { Pool.rj_depth; rj_capacity } ->
                  error_response "saturated"
                    [
                      ("queue_depth", int rj_depth);
                      ("capacity", int rj_capacity);
                    ]
              | Ok handle -> (
                  match Pool.await handle with
                  | Ok outcome -> outcome_response outcome
                  | Error e -> error_response (Printexc.to_string e) []))))
  | Some (Str other) -> error_response (Printf.sprintf "unknown op %S" other) []
  | _ -> error_response "missing \"op\" member" []

let connection_loop st fd =
  let rec go () =
    match read_frame fd with
    | None -> ()
    | Some payload ->
        let response =
          match parse payload with
          | doc -> handle_request st doc
          | exception Failure msg -> error_response ("bad request: " ^ msg) []
        in
        write_frame fd (to_string response);
        if not (Atomic.get st.stop) then go ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try go () with Failure _ | Unix.Unix_error _ -> ())

let serve ?queue_capacity ?session_capacity ?metrics ~workers ~socket () =
  let metrics =
    match metrics with Some m -> m | None -> Lg_support.Metrics.create ()
  in
  let queue_capacity =
    match queue_capacity with Some c -> c | None -> 4 * max 1 workers
  in
  let st =
    {
      pool = Pool.create ~metrics ~workers ~queue_capacity ();
      sessions = Session.create_cache ?capacity:session_capacity ();
      metrics;
      stop = Atomic.make false;
    }
  in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 16;
  let threads = ref [] in
  let finish () =
    (try Unix.close listener with Unix.Unix_error _ -> ());
    List.iter Thread.join !threads;
    Pool.drain st.pool;
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:finish @@ fun () ->
  while not (Atomic.get st.stop) do
    (* wake up periodically so a shutdown requested on some connection
       thread stops the accept loop too *)
    match Unix.select [ listener ] [] [] 0.2 with
    | [ _ ], _, _ ->
        let fd, _ = Unix.accept listener in
        threads := Thread.create (connection_loop st) fd :: !threads
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let request ~socket doc =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      write_frame fd (to_string doc);
      match read_frame fd with
      | Some payload -> parse payload
      | None -> failwith "server closed the connection without a response")
