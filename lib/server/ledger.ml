(* Per-tenant (per session digest) accounting: job and failure counts
   by exit class plus queue-wait/service time totals, one row per digest
   ever served. The session-cache columns and quarantine strikes live in
   the Session cache and are joined in at snapshot time by the server.
   Supervision-failed jobs (a crashed worker cannot report its split)
   count toward jobs and failures but not toward the time totals.

   The ledger is the one piece of serve state quota/billing wants to
   trust across a respawn, so it round-trips through a versioned JSON
   snapshot ([linguist_tenants:1]) written atomically (temp + rename)
   on drain/shutdown and merged back in on start. *)

type row = {
  mutable r_label : string;
  mutable r_jobs : int;
  mutable r_ok : int;
  mutable r_failures : (int * int) list;  (* exit code -> count *)
  mutable r_queue_wait : float;
  mutable r_service : float;
}

type t = { lock : Mutex.t; table : (string, row) Hashtbl.t }

let version = 1
let magic = "linguist_tenants"
let create () = { lock = Mutex.create (); table = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* under the lock *)
let find_row t ~digest ~label =
  match Hashtbl.find_opt t.table digest with
  | Some row -> row
  | None ->
      let row =
        {
          r_label = label;
          r_jobs = 0;
          r_ok = 0;
          r_failures = [];
          r_queue_wait = 0.0;
          r_service = 0.0;
        }
      in
      Hashtbl.replace t.table digest row;
      row

let bump_failure failures exit_code by =
  match List.assoc_opt exit_code failures with
  | Some n -> (exit_code, n + by) :: List.remove_assoc exit_code failures
  | None -> (exit_code, by) :: failures

let charge t ~digest ~label ~ok ~exit_code ~queue_wait ~service =
  if digest <> "" then
    locked t @@ fun () ->
    let row = find_row t ~digest ~label in
    if label <> "" then row.r_label <- label;
    row.r_jobs <- row.r_jobs + 1;
    if ok then row.r_ok <- row.r_ok + 1
    else row.r_failures <- bump_failure row.r_failures exit_code 1;
    row.r_queue_wait <- row.r_queue_wait +. queue_wait;
    row.r_service <- row.r_service +. service

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun digest row acc ->
          ( digest,
            row.r_label,
            row.r_jobs,
            row.r_ok,
            List.sort compare row.r_failures,
            row.r_queue_wait,
            row.r_service )
          :: acc)
        t.table [])
  |> List.sort (fun (_, a, _, _, _, _, _) (_, b, _, _, _, _, _) -> compare a b)

(* ---------- persistence ---------- *)

open Lg_support.Json_out

let to_json t =
  Obj
    [
      (magic, int version);
      ( "tenants",
        Arr
          (List.map
             (fun (digest, label, jobs, ok, failures, queue_wait, service) ->
               Obj
                 [
                   ("digest", Str digest);
                   ("label", Str label);
                   ("jobs", int jobs);
                   ("ok", int ok);
                   ( "failures",
                     Obj
                       (List.map
                          (fun (code, n) -> (string_of_int code, int n))
                          failures) );
                   ("queue_wait_seconds", Num queue_wait);
                   ("service_seconds", Num service);
                 ])
             (snapshot t)) );
    ]

let save t ~path =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (to_string ~pretty:true (to_json t));
        output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error msg

(* merge one parsed row into the live table: counts add, labels and
   time totals follow — a restart under traffic double-counts nothing
   because load happens before the listener opens *)
let merge_row t doc =
  let str name = match member name doc with Some (Str s) -> s | _ -> "" in
  let num name = match member name doc with Some (Num f) -> f | _ -> 0.0 in
  let digest = str "digest" in
  if digest = "" then Error "tenant row without a \"digest\""
  else begin
    locked t @@ fun () ->
    let row = find_row t ~digest ~label:(str "label") in
    if str "label" <> "" then row.r_label <- str "label";
    row.r_jobs <- row.r_jobs + int_of_float (num "jobs");
    row.r_ok <- row.r_ok + int_of_float (num "ok");
    (match member "failures" doc with
    | Some (Obj fields) ->
        List.iter
          (fun (code, n) ->
            match (int_of_string_opt code, n) with
            | Some code, Num n ->
                row.r_failures <-
                  bump_failure row.r_failures code (int_of_float n)
            | _ -> ())
          fields
    | _ -> ());
    row.r_queue_wait <- row.r_queue_wait +. num "queue_wait_seconds";
    row.r_service <- row.r_service +. num "service_seconds";
    Ok ()
  end

let load t ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match parse text with
      | exception Failure msg -> Error (path ^ ": not JSON: " ^ msg)
      | doc -> (
          match member magic doc with
          | None ->
              Error (Printf.sprintf "%s: not a %s snapshot" path magic)
          | Some v when v <> int version ->
              Error
                (Printf.sprintf "%s: unsupported %s version %s" path magic
                   (to_string v))
          | Some _ -> (
              match member "tenants" doc with
              | Some (Arr rows) ->
                  let rec go n = function
                    | [] -> Ok n
                    | row :: rest -> (
                        match merge_row t row with
                        | Ok () -> go (n + 1) rest
                        | Error msg -> Error (path ^ ": " ^ msg))
                  in
                  go 0 rows
              | _ -> Error (path ^ ": \"tenants\" must be an array"))))
