type tenant = Language of string | Grammar of string
type op = Check | Analyze | Translate of tenant | Update of tenant

type job = {
  j_id : string;
  j_op : op;
  j_file : string;
  j_source : string option;  (* inline input text; j_file becomes a label *)
  j_doc : string option;
  j_store : string;
  j_page_size : int option;
  j_faults : Lg_apt.Apt_store.fault_spec option;
  j_depth_budget : int option;
  j_node_budget : int option;
  j_deadline : float option;
}

let version = 1
let magic = "linguist_jobs"

let make ?(id = "") ?source ?doc ?(store = "mem") ?page_size ?faults
    ?depth_budget ?node_budget ?deadline ~op ~file () =
  {
    j_id = id;
    j_op = op;
    j_file = file;
    j_source = source;
    j_doc = doc;
    j_store = store;
    j_page_size = page_size;
    j_faults = faults;
    j_depth_budget = depth_budget;
    j_node_budget = node_budget;
    j_deadline = deadline;
  }

let op_name = function
  | Check -> "check"
  | Analyze -> "analyze"
  | Translate _ -> "translate"
  | Update _ -> "update"

let fault_kind_name = function
  | Lg_apt.Apt_store.Transient_io -> "transient"
  | Lg_apt.Apt_store.Short_read -> "short"
  | Lg_apt.Apt_store.Bit_flip -> "flip"
  | Lg_apt.Apt_store.Torn_write -> "torn"

let render_faults (f : Lg_apt.Apt_store.fault_spec) =
  Printf.sprintf "%d:%s:%s" f.Lg_apt.Apt_store.f_seed
    (Lg_support.Json_out.number f.Lg_apt.Apt_store.f_rate)
    (String.concat "," (List.map fault_kind_name f.Lg_apt.Apt_store.f_kinds))

open Lg_support.Json_out

let job_to_json j =
  let opt name conv = function None -> [] | Some v -> [ (name, conv v) ] in
  Obj
    ([ ("id", Str j.j_id); ("op", Str (op_name j.j_op)) ]
    @ (match j.j_op with
      | Translate (Language lang) | Update (Language lang) ->
          [ ("language", Str lang) ]
      | Translate (Grammar path) | Update (Grammar path) ->
          [ ("grammar", Str path) ]
      | Check | Analyze -> [])
    @ [ ("file", Str j.j_file) ]
    @ opt "source" (fun s -> Str s) j.j_source
    @ opt "doc" (fun d -> Str d) j.j_doc
    @ [ ("store", Str j.j_store) ]
    @ opt "page_size" int j.j_page_size
    @ opt "faults" (fun f -> Str (render_faults f)) j.j_faults
    @ opt "depth_budget" int j.j_depth_budget
    @ opt "node_budget" int j.j_node_budget
    @ opt "deadline" (fun d -> Num d) j.j_deadline)

let to_json jobs =
  Obj [ (magic, int version); ("jobs", Arr (List.map job_to_json jobs)) ]

let to_string ?pretty jobs = Lg_support.Json_out.to_string ?pretty (to_json jobs)

(* strict field readers: a present-but-mistyped field is an error *)
let str_member name doc =
  match member name doc with
  | Some (Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "%S must be a string" name)
  | None -> Ok None

let int_member name doc =
  match member name doc with
  | Some (Num _ as n) -> Ok (Some (to_int n))
  | Some _ -> Error (Printf.sprintf "%S must be a number" name)
  | None -> Ok None

let num_member name doc =
  match member name doc with
  | Some (Num f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "%S must be a number" name)
  | None -> Ok None

let ( let* ) = Result.bind

let job_of_json ~index doc =
  match doc with
  | Obj _ ->
      let* id = str_member "id" doc in
      let* op_str = str_member "op" doc in
      let* language = str_member "language" doc in
      let* grammar = str_member "grammar" doc in
      let* doc_id = str_member "doc" doc in
      let* file = str_member "file" doc in
      let* source = str_member "source" doc in
      let* store = str_member "store" doc in
      let* page_size = int_member "page_size" doc in
      let* faults_str = str_member "faults" doc in
      let* depth_budget = int_member "depth_budget" doc in
      let* node_budget = int_member "node_budget" doc in
      let* deadline = num_member "deadline" doc in
      let* () =
        match deadline with
        | Some d when d <= 0.0 -> Error "\"deadline\" must be positive"
        | _ -> Ok ()
      in
      let* tenant =
        match (language, grammar) with
        | Some _, Some _ ->
            Error "\"language\" and \"grammar\" are mutually exclusive"
        | Some lang, None -> Ok (Some (Language lang))
        | None, Some path -> Ok (Some (Grammar path))
        | None, None -> Ok None
      in
      let* op =
        match (op_str, tenant) with
        | Some "check", None -> Ok Check
        | Some "analyze", None -> Ok Analyze
        | Some "translate", Some t -> Ok (Translate t)
        | Some "translate", None ->
            Error "op \"translate\" needs a \"language\" or a \"grammar\""
        | Some "update", Some t -> Ok (Update t)
        | Some "update", None ->
            Error "op \"update\" needs a \"language\" or a \"grammar\""
        | Some ("check" | "analyze"), Some _ ->
            Error
              "\"language\"/\"grammar\" only apply to ops \"translate\" and \
               \"update\""
        | Some other, _ -> Error (Printf.sprintf "unknown op %S" other)
        | None, _ -> Error "missing \"op\""
      in
      let* () =
        match (op, doc_id) with
        | Update _, _ | _, None -> Ok ()
        | _, Some _ -> Error "\"doc\" only applies to op \"update\""
      in
      let* file =
        match file with Some f -> Ok f | None -> Error "missing \"file\""
      in
      let* faults =
        match faults_str with
        | None -> Ok None
        | Some spec -> (
            match Lg_apt.Store_faulty.parse_spec spec with
            | Ok f -> Ok (Some f)
            | Error msg -> Error (Printf.sprintf "\"faults\" %s: %s" spec msg))
      in
      Ok
        {
          j_id =
            (match id with
            | Some s when s <> "" -> s
            | _ -> Printf.sprintf "job-%d" (index + 1));
          j_op = op;
          j_file = file;
          j_source = source;
          j_doc = doc_id;
          j_store = Option.value store ~default:"mem";
          j_page_size = page_size;
          j_faults = faults;
          j_depth_budget = depth_budget;
          j_node_budget = node_budget;
          j_deadline = deadline;
        }
  | _ -> Error "each job must be an object"

let parse text =
  match Lg_support.Json_out.parse text with
  | exception Failure msg -> Error ("not JSON: " ^ msg)
  | doc -> (
      match member magic doc with
      | None -> Error (Printf.sprintf "not a jobfile (no %S member)" magic)
      | Some v when v <> int version ->
          Error
            (Printf.sprintf "unsupported %s version %s (this build reads %d)"
               magic
               (Lg_support.Json_out.to_string v)
               version)
      | Some _ -> (
          match member "jobs" doc with
          | Some (Arr jobs) ->
              let rec convert i acc = function
                | [] -> Ok (List.rev acc)
                | j :: rest -> (
                    match job_of_json ~index:i j with
                    | Ok job -> convert (i + 1) (job :: acc) rest
                    | Error msg -> Error (Printf.sprintf "job %d: %s" (i + 1) msg)
                    )
              in
              convert 0 [] jobs
          | _ -> Error "\"jobs\" must be an array"))

let parse_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | text -> ( match parse text with Ok _ as ok -> ok | Error e -> Error (path ^ ": " ^ e))
