(** Batch execution: a {!Jobfile} job list through the worker {!Pool}.

    Each job runs in complete isolation: its intermediate APT files live
    in a private temporary directory (removed afterwards even on
    failure), its store configuration, fault injection and evaluator
    budgets come from its own jobfile entry, and any failure — grammar
    diagnostics, a typed {!Lg_apt.Apt_error} from a faulted store, a
    blown depth/node budget — is captured in that job's result record
    with the same stable exit code the CLI would have used (40–44 for
    the typed classes), leaving every sibling untouched.

    Telemetry composes with the single-run story: each job records into
    a private tracer that the parent tracer absorbs on completion
    ({!Lg_support.Trace.absorb}), and the pool publishes [server.*]
    metrics into the shared registry. The {e payload} of a result is
    deterministic — timings are kept apart so a pooled run is
    byte-identical to a sequential run over the same jobs
    ({!to_json} with [~timings:false], the default).

    The fault-tolerance layer composes here too: a [deadline] (per-job
    field, or the run default) arms the pool watchdog; a job that
    crashes its worker ({!Pool.Crash}, [Out_of_memory]) or blows its
    deadline fails with a typed {!Server_error} exit (50–52) and
    {!Session.strike}s its tenant's session toward quarantine; an
    optional {!Chaos} injector exercises all of it deterministically.
    Because chaos rolls are keyed by job id/file, the {e surviving}
    jobs of a chaotic run stay byte-identical to a fault-free run. *)

type outcome = {
  o_id : string;
  o_op : string;
  o_file : string;
  o_ok : bool;
  o_exit : int;
      (** 0 success; 1 diagnostics/logic failure; 40–44 the typed APT
          integrity / resource classes ({!Lg_apt.Apt_error.exit_code});
          50–52 the typed serving classes
          ({!Server_error.exit_code}) *)
  o_error : string option;
  o_payload : Lg_support.Json_out.t;  (** deterministic result document *)
  o_seconds : float;  (** job wall time (not part of the payload) *)
}

type summary = {
  outcomes : outcome list;  (** in jobfile order *)
  n_ok : int;
  n_failed : int;
  workers : int;  (** 0 = sequential in the calling domain *)
  wall_seconds : float;
}

(** How [update] jobs evaluate (see [docs/INCREMENTAL.md]).
    [inc_threshold] is the churn fraction above which an update falls
    back to full evaluation; [inc_spill] round-trips each document's
    versioned attribute store through the job's APT backend (state in
    the store registry's custody — and under its fault injection). *)
type incremental = { inc_threshold : float; inc_spill : bool }

val default_incremental : incremental
(** threshold 0.5, no spilling. *)

val run_job :
  sessions:Session.cache -> ?incremental:incremental -> Jobfile.job -> outcome
(** One job, synchronously, in the calling domain — the unit of work the
    pool executes. Never raises: every failure lands in the outcome.
    Without [incremental], [update] jobs still answer correctly but
    evaluate from scratch and keep no per-document state. *)

val default_workers : unit -> int
(** [min 4 (recommended_domain_count - 1)], at least 1. *)

val culprit : Jobfile.job -> (string * string) option
(** [(digest, label)] of the session a job would be served from — the
    digest its tenant caches under, the one {!failure_outcome} strikes
    and the serve front-end's per-tenant accounting charges. [None] for
    [check] jobs (compiled fresh, no session) and for a grammar tenant
    whose file cannot be read. *)

val quarantine_gate : sessions:Session.cache -> Jobfile.job -> unit
(** Admission control: raises the typed
    {!Server_error.Session_quarantined} when the job's tenant session is
    quarantined — call it first in the thunk, ahead of {!chaos_gate},
    so a refusal never burns a worker. *)

val chaos_gate : ?chaos:Chaos.t -> Jobfile.job -> unit
(** Run [chaos]'s injection decision for the job — call it {e inside}
    the pool thunk, before the job proper. [Delay_job]/[Wedge_job]
    sleep; [Crash_job] raises {!Pool.Crash}. No-op without [chaos]. *)

val failure_outcome :
  ?metrics:Lg_support.Metrics.t ->
  sessions:Session.cache ->
  Jobfile.job ->
  exn ->
  outcome
(** The outcome for a job the {e supervision layer} failed — the
    [Error e] arm of {!Pool.await}, and the serve front-end's
    equivalent. A typed {!Server_error.Error} keeps its exit code and
    rendered message; anything else is exit 1. [Worker_crashed] and
    [Deadline_exceeded] additionally {!Session.strike} the job's tenant
    session (crossing the quarantine threshold bumps
    [server.quarantined] on [metrics]). *)

val run :
  ?workers:int ->
  ?sessions:Session.cache ->
  ?metrics:Lg_support.Metrics.t ->
  ?tracer:Lg_support.Trace.t ->
  ?incremental:incremental ->
  ?chaos:Chaos.t ->
  ?deadline:float ->
  Jobfile.job list ->
  summary
(** Run the list on a fresh pool of [workers] domains (default
    {!default_workers}; [0] runs sequentially with no pool). [metrics]
    and [tracer] default to the calling domain's ambient registry and
    tracer. The pool is drained before returning; outcomes keep jobfile
    order.

    [deadline] (seconds) is the default wall-clock budget for jobs that
    don't set their own [j_deadline]; enforced by the pool watchdog, so
    sequential runs ([workers = 0]) don't enforce it. [chaos] injects
    deterministic job-level faults ({!Chaos.on_job}) ahead of each
    job. *)

val run_sequential :
  ?sessions:Session.cache ->
  ?metrics:Lg_support.Metrics.t ->
  ?tracer:Lg_support.Trace.t ->
  ?incremental:incremental ->
  Jobfile.job list ->
  summary
(** [run ~workers:0] — the baseline the benchmark harness compares pooled
    throughput against. Publishes the same [server.*] series a pooled
    run would (jobs, queue-wait/service/job histograms — queue wait
    identically 0), so the two are comparable on the metrics axis
    too. *)

val to_json : ?timings:bool -> summary -> Lg_support.Json_out.t
(** The results document. With [timings:false] (the default) the
    document depends only on the jobs and their outcomes — byte-identical
    across worker counts; [timings:true] adds wall/per-job seconds and
    throughput. *)
