(** The per-tenant accounting ledger behind the [tenants] serve op: one
    row per session digest ever served, carrying job/success counts,
    failures keyed by typed exit code, and queue-wait/service time
    totals. Thread-safe; charging is cheap enough for the per-job path.

    Unlike every other [server.*] surface the ledger is meant to
    survive a respawn — quota and billing cannot restart from zero
    because a host rolled — so it round-trips through a versioned
    [linguist_tenants:1] JSON snapshot: {!save} writes atomically
    (temp file + rename, so a crash mid-write leaves the previous
    snapshot intact) and {!load} {e merges} rows into the live table
    (counts add), which makes load-at-boot + save-at-drain/shutdown an
    exactly-once accounting cycle. *)

type t

val create : unit -> t

val charge :
  t ->
  digest:string ->
  label:string ->
  ok:bool ->
  exit_code:int ->
  queue_wait:float ->
  service:float ->
  unit
(** Attribute one finished job to [digest]. A non-empty [label] updates
    the row's display label; an empty [digest] is a no-op (jobs with no
    tenant — [check] — are not accounted). Failed jobs bump the
    [exit_code] bucket; supervision failures pass zero time totals. *)

val snapshot :
  t -> (string * string * int * int * (int * int) list * float * float) list
(** [(digest, label, jobs, ok, failures, queue_wait, service)] rows,
    sorted by label; [failures] is [exit code -> count] sorted by
    code. *)

val to_json : t -> Lg_support.Json_out.t
(** The persistent snapshot document. *)

val save : t -> path:string -> (unit, string) result
(** Write the snapshot atomically: a temp file in [path]'s directory,
    then rename over [path]. *)

val load : t -> path:string -> (int, string) result
(** Merge a snapshot's rows into the live table; [Ok n] is the number
    of rows merged. [Error] on unreadable files, non-snapshot JSON or a
    wrong version — the caller decides whether a missing file is fine
    (a first boot) or fatal. *)
