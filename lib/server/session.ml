(* Building/Ready entries under one mutex: the first requester of a key
   inserts [Building] and compiles outside the lock; latecomers wait on
   the condition until the slot turns [Ready] (or vanishes, when the
   build raised — then one of them becomes the next builder). Recency is
   a monotonic tick per hit; eviction drops the stalest Ready entry. *)

type payload =
  | Artifact of Linguist.Driver.artifact
  | Translator of Linguist.Translator.t

type t = { s_digest : string; s_label : string; s_payload : payload }

let digest ~kind ~source = Digest.to_hex (Digest.string (kind ^ "\x00" ^ source))

type entry = Building | Ready of { session : t; mutable last_use : int }

type cache = {
  lock : Mutex.t;
  turned : Condition.t;  (* signalled whenever an entry changes state *)
  entries : (string, entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ?(capacity = 8) () =
  {
    lock = Mutex.create ();
    turned = Condition.create ();
    entries = Hashtbl.create 16;
    cap = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let length c = locked c (fun () -> Hashtbl.length c.entries)
let capacity c = c.cap
let stats c = locked c (fun () -> (c.hits, c.misses))

(* under the lock *)
let evict_if_full c =
  let ready = ref 0 in
  Hashtbl.iter
    (fun _ -> function Ready _ -> incr ready | Building -> ())
    c.entries;
  if !ready >= c.cap then begin
    let stalest = ref None in
    Hashtbl.iter
      (fun key -> function
        | Building -> ()
        | Ready r -> (
            match !stalest with
            | Some (_, age) when age <= r.last_use -> ()
            | _ -> stalest := Some (key, r.last_use)))
      c.entries;
    match !stalest with
    | Some (key, _) -> Hashtbl.remove c.entries key
    | None -> ()
  end

let find_or_build c ~digest ~label ~build =
  let role =
    locked c @@ fun () ->
    let rec decide () =
      match Hashtbl.find_opt c.entries digest with
      | Some (Ready r) ->
          c.tick <- c.tick + 1;
          r.last_use <- c.tick;
          c.hits <- c.hits + 1;
          `Hit r.session
      | Some Building ->
          Condition.wait c.turned c.lock;
          decide ()
      | None ->
          c.misses <- c.misses + 1;
          Hashtbl.replace c.entries digest Building;
          `Build
    in
    decide ()
  in
  match role with
  | `Hit session -> session
  | `Build -> (
      match build () with
      | payload ->
          let session = { s_digest = digest; s_label = label; s_payload = payload } in
          locked c (fun () ->
              Hashtbl.remove c.entries digest;
              evict_if_full c;
              c.tick <- c.tick + 1;
              Hashtbl.replace c.entries digest (Ready { session; last_use = c.tick });
              Condition.broadcast c.turned);
          session
      | exception e ->
          locked c (fun () ->
              Hashtbl.remove c.entries digest;
              Condition.broadcast c.turned);
          raise e)

let grammar_session c ?(options = Linguist.Driver.default_options) ~file ~source
    () =
  let key = digest ~kind:"grammar" ~source in
  find_or_build c ~digest:key ~label:("grammar:" ^ Filename.basename file)
    ~build:(fun () ->
      match Linguist.Driver.process ~options ~file source with
      | Ok artifact -> Artifact artifact
      | Error diag ->
          failwith (Linguist.Listing.errors_only ~source ~file diag))

let languages :
    (string * (unit -> Linguist.Translator.t)) list =
  [
    ("desk_calc", Lg_languages.Desk_calc.translator);
    ("assembler", Lg_languages.Assembler.translator);
    ("knuth_binary", Lg_languages.Knuth_binary.translator);
    ("pascal", Lg_languages.Pascal_ag.translator);
    ("linguist", Lg_languages.Linguist_ag.translator);
  ]

let language_names () = List.map fst languages

let language_session c name =
  match List.assoc_opt name languages with
  | None ->
      failwith
        (Printf.sprintf "unknown language %S (expected one of %s)" name
           (String.concat ", " (language_names ())))
  | Some make ->
      let key = digest ~kind:"language" ~source:name in
      find_or_build c ~digest:key ~label:("language:" ^ name)
        ~build:(fun () -> Translator (make ()))
