(* Building/Ready entries under one mutex: the first requester of a key
   inserts [Building] and compiles outside the lock; latecomers wait on
   the condition until the slot turns [Ready] (or vanishes, when the
   build raised — then one of them becomes the next builder).

   Eviction is cost-aware (GreedyDual): every Ready entry carries a
   credit of [floor + weight], where the weight estimates what evicting
   it would cost to rebuild (measured build seconds plus a term for the
   LALR table bytes). Eviction removes the minimum-credit entry and
   raises the floor to that credit, so recency and rebuild cost trade
   off against each other instead of recency alone deciding. An
   optional TTL expires entries that have sat untouched.

   Quarantine: the serving layer reports a strike against a digest each
   time one of its jobs takes a worker down (crash or watchdog
   timeout). At [quarantine_after] strikes the digest is quarantined —
   its cached entry is dropped and every further request raises a typed
   Server_error until [evict] (or [clear]) lifts it — so one bad
   grammar cannot consume the fleet one worker at a time. *)

type payload =
  | Artifact of Linguist.Driver.artifact
  | Translator of Linguist.Translator.t

type t = { s_digest : string; s_label : string; s_payload : payload }

let digest ~kind ~source = Digest.to_hex (Digest.string (kind ^ "\x00" ^ source))

type ready = {
  session : t;
  mutable last_use : int;  (* monotonic tick, diagnostics only *)
  mutable last_touch : float;  (* clock seconds, drives the TTL *)
  mutable credit : float;  (* GreedyDual priority *)
  built_at : float;
  build_seconds : float;
  weight : float;
}

type entry = Building | Ready of ready

(* Per-document incremental state parked next to the session that owns
   it; the slot mutex serialises updates to one document while leaving
   other documents of the same session free. *)
type doc_slot = {
  doc_lock : Mutex.t;
  mutable doc_state : Lg_incremental.Incr.state option;
  mutable doc_last_use : int;
}

(* per-digest cache traffic, the [tenants] serve op's cache column;
   kept forever (a counter triple per digest ever served is cheap) so
   accounting survives the entry's eviction *)
type tstat = {
  mutable ts_hits : int;
  mutable ts_misses : int;
  mutable ts_evictions : int;
}

type cache = {
  lock : Mutex.t;
  turned : Condition.t;  (* signalled whenever an entry changes state *)
  entries : (string, entry) Hashtbl.t;
  docs : (string * string, doc_slot) Hashtbl.t;  (* (digest, doc) *)
  cap : int;
  doc_cap : int;
  ttl : float option;
  clock : unit -> float;
  quarantine_after : int;
  strikes : (string, int * string) Hashtbl.t;  (* digest -> strikes, label *)
  tstats : (string, tstat) Hashtbl.t;  (* digest -> cache traffic *)
  metrics : Lg_support.Metrics.t;  (* server.session_builds *)
  mutable floor : float;  (* GreedyDual inflation *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable expirations : int;
}

let create_cache ?(capacity = 8) ?(doc_capacity = 128) ?ttl
    ?(quarantine_after = 3) ?(clock = Unix.gettimeofday)
    ?(metrics = Lg_support.Metrics.null) () =
  {
    lock = Mutex.create ();
    turned = Condition.create ();
    entries = Hashtbl.create 16;
    docs = Hashtbl.create 16;
    cap = max 1 capacity;
    doc_cap = max 1 doc_capacity;
    ttl;
    clock;
    quarantine_after = max 1 quarantine_after;
    strikes = Hashtbl.create 8;
    tstats = Hashtbl.create 16;
    metrics;
    floor = 0.0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    expirations = 0;
  }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let length c = locked c (fun () -> Hashtbl.length c.entries)
let capacity c = c.cap
let stats c = locked c (fun () -> (c.hits, c.misses))
let eviction_stats c = locked c (fun () -> (c.evictions, c.expirations))

(* under the lock *)
let tstat c digest =
  match Hashtbl.find_opt c.tstats digest with
  | Some s -> s
  | None ->
      let s = { ts_hits = 0; ts_misses = 0; ts_evictions = 0 } in
      Hashtbl.replace c.tstats digest s;
      s

let tenant_stats c ~digest =
  locked c (fun () ->
      match Hashtbl.find_opt c.tstats digest with
      | Some s -> (s.ts_hits, s.ts_misses, s.ts_evictions)
      | None -> (0, 0, 0))

(* under the lock *)
let drop_docs c digest =
  let dead =
    Hashtbl.fold
      (fun ((d, _) as key) _ acc -> if String.equal d digest then key :: acc else acc)
      c.docs []
  in
  List.iter (Hashtbl.remove c.docs) dead

(* under the lock *)
let remove_entry c key =
  Hashtbl.remove c.entries key;
  drop_docs c key

(* under the lock: expire Ready entries that outlived the TTL *)
let sweep_expired c =
  match c.ttl with
  | None -> ()
  | Some ttl ->
      let now = c.clock () in
      let dead =
        Hashtbl.fold
          (fun key entry acc ->
            match entry with
            | Ready r when now -. r.last_touch > ttl -> key :: acc
            | Ready _ | Building -> acc)
          c.entries []
      in
      List.iter
        (fun key ->
          remove_entry c key;
          c.expirations <- c.expirations + 1)
        dead

(* under the lock *)
let evict_if_full c =
  sweep_expired c;
  let ready = ref 0 in
  Hashtbl.iter
    (fun _ -> function Ready _ -> incr ready | Building -> ())
    c.entries;
  if !ready >= c.cap then begin
    (* minimum credit; ties broken by recency, so uniform weights
       degrade to exact LRU *)
    let cheapest = ref None in
    Hashtbl.iter
      (fun key -> function
        | Building -> ()
        | Ready r -> (
            match !cheapest with
            | Some (_, credit, use)
              when credit < r.credit
                   || (credit = r.credit && use <= r.last_use) ->
                ()
            | _ -> cheapest := Some (key, r.credit, r.last_use)))
      c.entries;
    match !cheapest with
    | Some (key, credit, _) ->
        remove_entry c key;
        c.evictions <- c.evictions + 1;
        (tstat c key).ts_evictions <- (tstat c key).ts_evictions + 1;
        c.floor <- Float.max c.floor credit
    | None -> ()
  end

(* The rebuild-cost weight: measured build time plus a term for the
   parse tables a translator would have to reconstruct. *)
let table_bytes_of = function
  | Artifact _ -> 0
  | Translator t -> Lg_lalr.Tables.table_bytes (Linguist.Translator.parse_tables t)

let default_weight ~build_seconds payload =
  build_seconds +. (float_of_int (table_bytes_of payload) /. 1.0e7)

(* under the lock *)
let quarantined_strikes c digest =
  match Hashtbl.find_opt c.strikes digest with
  | Some (n, label) when n >= c.quarantine_after -> Some (n, label)
  | _ -> None

let strike c ~digest ~label =
  locked c (fun () ->
      let n =
        match Hashtbl.find_opt c.strikes digest with
        | Some (n, _) -> n + 1
        | None -> 1
      in
      Hashtbl.replace c.strikes digest (n, label);
      if n >= c.quarantine_after then
        (* the quarantined session's resident entry (if any) is dropped:
           a payload whose jobs keep killing workers is not worth its
           slot, and requests are refused before the lookup anyway *)
        remove_entry c digest;
      n)

let quarantine_threshold c = c.quarantine_after

let is_quarantined c ~digest =
  locked c (fun () -> quarantined_strikes c digest <> None)

let strike_count c ~digest =
  locked c (fun () ->
      match Hashtbl.find_opt c.strikes digest with
      | Some (n, _) -> n
      | None -> 0)

let quarantined c =
  locked c (fun () ->
      Hashtbl.fold
        (fun digest (n, label) acc ->
          if n >= c.quarantine_after then (digest, label, n) :: acc else acc)
        c.strikes []
      |> List.sort (fun (_, a, _) (_, b, _) -> compare a b))

let find_or_build c ?weight ~digest ~label ~build () =
  let role =
    locked c @@ fun () ->
    (match quarantined_strikes c digest with
    | Some (strikes, qlabel) ->
        Server_error.raise_
          (Server_error.Session_quarantined { digest; label = qlabel; strikes })
    | None -> ());
    sweep_expired c;
    let rec decide () =
      match Hashtbl.find_opt c.entries digest with
      | Some (Ready r) ->
          c.tick <- c.tick + 1;
          r.last_use <- c.tick;
          r.last_touch <- c.clock ();
          r.credit <- c.floor +. r.weight;
          c.hits <- c.hits + 1;
          (tstat c digest).ts_hits <- (tstat c digest).ts_hits + 1;
          `Hit r.session
      | Some Building ->
          Condition.wait c.turned c.lock;
          decide ()
      | None ->
          c.misses <- c.misses + 1;
          (tstat c digest).ts_misses <- (tstat c digest).ts_misses + 1;
          Hashtbl.replace c.entries digest Building;
          `Build
    in
    decide ()
  in
  (* the serving layer's per-request tracer is this domain's ambient: a
     hit is a zero-width marker, a build wraps the whole compilation *)
  let tr = Lg_support.Trace.ambient () in
  match role with
  | `Hit session ->
      Lg_support.Trace.span tr ~cat:"session"
        ~args:[ ("digest", Lg_support.Trace.Str digest) ]
        "session.hit"
        (fun () -> ());
      session
  | `Build -> (
      let started = c.clock () in
      match
        Lg_support.Trace.span tr ~cat:"session"
          ~args:[ ("digest", Lg_support.Trace.Str digest) ]
          "session.build" build
      with
      | payload ->
          let build_seconds = c.clock () -. started in
          let weight =
            match weight with
            | Some w -> w
            | None -> default_weight ~build_seconds payload
          in
          let session = { s_digest = digest; s_label = label; s_payload = payload } in
          (* every completed build counts here — the coordinator's
             builds-per-grammar placement check reads this per worker *)
          Lg_support.Metrics.incr c.metrics "server.session_builds";
          locked c (fun () ->
              Hashtbl.remove c.entries digest;
              evict_if_full c;
              c.tick <- c.tick + 1;
              Hashtbl.replace c.entries digest
                (Ready
                   {
                     session;
                     last_use = c.tick;
                     last_touch = c.clock ();
                     credit = c.floor +. weight;
                     built_at = started;
                     build_seconds;
                     weight;
                   });
              Condition.broadcast c.turned);
          session
      | exception e ->
          locked c (fun () ->
              Hashtbl.remove c.entries digest;
              Condition.broadcast c.turned);
          raise e)

let evict c ~digest =
  locked c (fun () ->
      let struck = Hashtbl.mem c.strikes digest in
      Hashtbl.remove c.strikes digest;
      match Hashtbl.find_opt c.entries digest with
      | Some (Ready _) ->
          remove_entry c digest;
          c.evictions <- c.evictions + 1;
          (tstat c digest).ts_evictions <- (tstat c digest).ts_evictions + 1;
          true
      | Some Building | None -> struck)

let clear c =
  locked c (fun () ->
      Hashtbl.reset c.strikes;
      let ready =
        Hashtbl.fold
          (fun key entry acc ->
            match entry with Ready _ -> key :: acc | Building -> acc)
          c.entries []
      in
      List.iter
        (fun key ->
          remove_entry c key;
          (tstat c key).ts_evictions <- (tstat c key).ts_evictions + 1)
        ready;
      c.evictions <- c.evictions + List.length ready;
      List.length ready)

type info = {
  i_digest : string;
  i_label : string;
  i_weight : float;
  i_build_seconds : float;
  i_age : float;
  i_idle : float;
  i_docs : int;
}

let entries_info c =
  locked c (fun () ->
      let now = c.clock () in
      let docs_of digest =
        Hashtbl.fold
          (fun (d, _) _ n -> if String.equal d digest then n + 1 else n)
          c.docs 0
      in
      Hashtbl.fold
        (fun key entry acc ->
          match entry with
          | Building -> acc
          | Ready r ->
              {
                i_digest = key;
                i_label = r.session.s_label;
                i_weight = r.weight;
                i_build_seconds = r.build_seconds;
                i_age = now -. r.built_at;
                i_idle = now -. r.last_touch;
                i_docs = docs_of key;
              }
              :: acc)
        c.entries []
      |> List.sort (fun a b -> compare a.i_label b.i_label))

(* under the lock: bound the per-cache document population *)
let evict_stale_doc c =
  if Hashtbl.length c.docs > c.doc_cap then begin
    let stalest = ref None in
    Hashtbl.iter
      (fun key slot ->
        match !stalest with
        | Some (_, age) when age <= slot.doc_last_use -> ()
        | _ -> stalest := Some (key, slot.doc_last_use))
      c.docs;
    match !stalest with
    | Some (key, _) -> Hashtbl.remove c.docs key
    | None -> ()
  end

let doc_slot c ~digest ~doc =
  locked c (fun () ->
      c.tick <- c.tick + 1;
      match Hashtbl.find_opt c.docs (digest, doc) with
      | Some slot ->
          slot.doc_last_use <- c.tick;
          slot
      | None ->
          let slot =
            { doc_lock = Mutex.create (); doc_state = None; doc_last_use = c.tick }
          in
          Hashtbl.replace c.docs (digest, doc) slot;
          evict_stale_doc c;
          slot)

let doc_count c = locked c (fun () -> Hashtbl.length c.docs)

let grammar_session c ?(options = Linguist.Driver.default_options) ~file ~source
    () =
  let key = digest ~kind:"grammar" ~source in
  find_or_build c ~digest:key ~label:("grammar:" ^ Filename.basename file)
    ~build:(fun () ->
      match Linguist.Driver.process ~options ~file source with
      | Ok artifact -> Artifact artifact
      | Error diag ->
          failwith (Linguist.Listing.errors_only ~source ~file diag))
    ()

let translator_session c ?options ~file ~source () =
  let key = digest ~kind:"translator" ~source in
  find_or_build c ~digest:key
    ~label:("translator:" ^ Filename.basename file)
    ~build:(fun () ->
      match
        Linguist.Translator.of_source ?options ~ag_source:source ~file ()
      with
      | Ok t -> Translator t
      | Error diag ->
          failwith (Linguist.Listing.errors_only ~source ~file diag))
    ()

let languages :
    (string * (unit -> Linguist.Translator.t)) list =
  [
    ("desk_calc", Lg_languages.Desk_calc.translator);
    ("assembler", Lg_languages.Assembler.translator);
    ("knuth_binary", Lg_languages.Knuth_binary.translator);
    ("pascal", Lg_languages.Pascal_ag.translator);
    ("linguist", Lg_languages.Linguist_ag.translator);
  ]

let language_names () = List.map fst languages

let language_session c name =
  match List.assoc_opt name languages with
  | None ->
      failwith
        (Printf.sprintf "unknown language %S (expected one of %s)" name
           (String.concat ", " (language_names ())))
  | Some make ->
      let key = digest ~kind:"language" ~source:name in
      find_or_build c ~digest:key ~label:("language:" ^ name)
        ~build:(fun () -> Translator (make ()))
        ()
