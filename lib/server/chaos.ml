(* Deterministic server-layer fault injection, the serving sibling of
   Store_faulty's SEED:RATE:KINDS idiom. Job-level rolls are keyed by
   (seed, job id, job file) through MD5, so whether a given job is hit —
   and with which kind — is a pure function of the spec and the job,
   independent of worker count or scheduling. That is what lets the
   chaos bench and tests demand that surviving jobs stay byte-identical
   to a fault-free sequential run. Connection-level rolls (drop) are
   keyed by a response serial instead: liveness under drops is the
   asserted property there, not byte equality. *)

type kind = Delay | Crash | Wedge | Drop

type spec = { c_seed : int; c_rate : float; c_kinds : kind list }

let kind_of_string = function
  | "delay" -> Ok Delay
  | "crash" -> Ok Crash
  | "wedge" -> Ok Wedge
  | "drop" -> Ok Drop
  | s -> Error s

let kind_to_string = function
  | Delay -> "delay"
  | Crash -> "crash"
  | Wedge -> "wedge"
  | Drop -> "drop"

let all_kinds = [ Delay; Crash; Wedge; Drop ]

let parse_spec s =
  match String.split_on_char ':' s with
  | [ seed; rate; kinds ] -> (
      match (int_of_string_opt seed, float_of_string_opt rate) with
      | Some c_seed, Some c_rate when c_rate >= 0.0 && c_rate <= 1.0 -> (
          let parts =
            List.filter
              (fun p -> p <> "")
              (String.split_on_char ',' (String.lowercase_ascii kinds))
          in
          if parts = [] then Error "no chaos kinds given"
          else if List.mem "all" parts then
            Ok { c_seed; c_rate; c_kinds = all_kinds }
          else
            let rec go acc = function
              | [] -> Ok { c_seed; c_rate; c_kinds = List.rev acc }
              | p :: rest -> (
                  match kind_of_string p with
                  | Ok k -> go (k :: acc) rest
                  | Error bad ->
                      Error
                        (Printf.sprintf
                           "unknown chaos kind %S (expected \
                            delay|crash|wedge|drop|all)"
                           bad))
            in
            go [] parts)
      | _ -> Error "expected SEED:RATE:KINDS with integer seed and rate in [0,1]")
  | _ -> Error "expected SEED:RATE:KINDS, e.g. 9:0.05:crash,drop"

let render_spec { c_seed; c_rate; c_kinds } =
  Printf.sprintf "%d:%s:%s" c_seed
    (Lg_support.Json_out.number c_rate)
    (String.concat "," (List.map kind_to_string c_kinds))

type t = {
  spec : spec;
  poison : string option;
  delay_seconds : float;
  wedge_seconds : float;
  metrics : Lg_support.Metrics.t;
  serial : int Atomic.t;  (* connection-response roll counter *)
}

let create ?poison ?(delay = 0.02) ?(wedge = 0.5)
    ?(metrics = Lg_support.Metrics.null) spec =
  {
    spec;
    poison;
    delay_seconds = delay;
    wedge_seconds = wedge;
    metrics;
    serial = Atomic.make 0;
  }

let spec t = t.spec
let delay_seconds t = t.delay_seconds
let wedge_seconds t = t.wedge_seconds

(* Two independent uniform draws in [0,1) from one MD5 over the keyed
   material: bytes 0-6 decide *whether* to inject, bytes 7-13 *which*
   kind — platform-stable and order-free. *)
let rolls ~seed key =
  let d = Digest.string (Printf.sprintf "chaos:%d:%s" seed key) in
  let take off =
    let v = ref 0.0 in
    for i = off to off + 6 do
      v := (!v *. 256.0) +. float_of_int (Char.code d.[i])
    done;
    !v /. (256.0 ** 7.0)
  in
  (take 0, take 7)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

type job_action = Delay_job | Crash_job | Wedge_job

let poisoned t ~id ~file =
  match t.poison with
  | None -> false
  | Some sub -> contains ~sub id || contains ~sub file

let job_kinds t =
  List.filter (function Delay | Crash | Wedge -> true | Drop -> false)
    t.spec.c_kinds

let count t k =
  Lg_support.Metrics.incr t.metrics ("server.chaos." ^ kind_to_string k)

let on_job t ~id ~file =
  if poisoned t ~id ~file then begin
    count t Crash;
    Some Crash_job
  end
  else
    match job_kinds t with
    | [] -> None
    | kinds ->
        let u, v = rolls ~seed:t.spec.c_seed (id ^ "\x00" ^ file) in
        if u >= t.spec.c_rate then None
        else begin
          let k = List.nth kinds (int_of_float (v *. float_of_int (List.length kinds))) in
          count t k;
          Some
            (match k with
            | Delay -> Delay_job
            | Crash -> Crash_job
            | Wedge -> Wedge_job
            | Drop -> assert false)
        end

let drop_response t =
  List.mem Drop t.spec.c_kinds
  &&
  let n = Atomic.fetch_and_add t.serial 1 in
  let u, _ = rolls ~seed:t.spec.c_seed (Printf.sprintf "conn:%d" n) in
  let hit = u < t.spec.c_rate in
  if hit then count t Drop;
  hit
