(* The serving layer's typed failure channel, mirroring Apt_error's
   design one layer up: pool- and session-level failures surface as
   values of [t] carried by the [Error] exception — never as bare
   [Failure] strings — so batch outcomes and socket responses can
   dispatch on the class and exit with a stable code. *)

type t =
  | Deadline_exceeded of { job : string; deadline : float; elapsed : float }
  | Worker_crashed of { job : string; detail : string }
  | Session_quarantined of { digest : string; label : string; strikes : int }

exception Error of t

let raise_ e = raise (Error e)

let exit_code = function
  | Deadline_exceeded _ -> 50
  | Worker_crashed _ -> 51
  | Session_quarantined _ -> 52

let to_string = function
  | Deadline_exceeded { job; deadline; elapsed } ->
      Printf.sprintf
        "job %s exceeded its %gs deadline (%.3fs since submission); failed \
         by the pool watchdog, worker recycled"
        (if job = "" then "<anonymous>" else job)
        deadline elapsed
  | Worker_crashed { job; detail } ->
      Printf.sprintf "worker crashed running job %s: %s (worker respawned)"
        (if job = "" then "<anonymous>" else job)
        detail
  | Session_quarantined { digest; label; strikes } ->
      Printf.sprintf
        "session %s (%s) is quarantined after %d worker-fatal job%s; \
         \"evict\" clears it"
        label digest strikes
        (if strikes = 1 then "" else "s")

let class_name = function
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Worker_crashed _ -> "worker_crashed"
  | Session_quarantined _ -> "session_quarantined"
