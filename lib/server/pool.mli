(** A fixed-size domain worker pool with a bounded job queue.

    The batch-evaluation service's execution substrate: [workers] domains
    pull thunks off one queue and run them to completion. The queue is
    {e bounded} — a {!submit} against a full queue is refused immediately
    with the queue's state ({!reject}) instead of blocking, which is the
    backpressure contract the socket front-end ({!Server}) exposes to
    clients — and {!drain} stops intake, runs the backlog dry and joins
    every worker, so shutdown never abandons accepted work.

    Each worker domain installs the pool's metrics registry as its
    domain-local ambient ({!Lg_support.Metrics.install}), so code deep
    under a job (the APT store stack, the evaluator) publishes into the
    shared registry exactly as it would single-threaded. The pool itself
    publishes under [server.*]: [server.queue_depth] (gauge, current
    backlog), [server.queue_peak] (gauge, high-water mark),
    [server.jobs] / [server.rejections] (counters) and
    [server.job_seconds] (histogram of submit-to-completion latency).

    Ambient {e tracers} are deliberately not installed here: a trace is
    one well-nested story, so per-job tracers are the callers' business
    ({!Batch} creates one per job and lets the parent
    {!Lg_support.Trace.absorb} it). *)

type t

type 'a handle
(** A pending result. *)

type reject = {
  rj_depth : int;  (** jobs queued when the submit was refused *)
  rj_capacity : int;
}

val create :
  ?metrics:Lg_support.Metrics.t ->
  workers:int ->
  queue_capacity:int ->
  unit ->
  t
(** Spawn [workers] domains (at least 1). [queue_capacity] bounds the
    number of {e not yet started} jobs (at least 1); [metrics] (default
    {!Lg_support.Metrics.null}) receives the [server.*] series and
    becomes each worker's ambient registry. *)

val workers : t -> int

val submit : t -> (unit -> 'a) -> ('a handle, reject) result
(** Enqueue a job, or refuse it when the queue is at capacity.
    @raise Invalid_argument on a pool that {!drain} has shut down. *)

val await : 'a handle -> ('a, exn) result
(** Block until the job has run. [Error e] carries the exception the job
    raised — a faulted job poisons only its own handle, never the pool. *)

val queue_depth : t -> int
(** Jobs accepted but not yet started. *)

val drain : t -> unit
(** Stop accepting work, run every queued job, join all workers.
    Idempotent. *)
