(** A supervised, fixed-size domain worker pool with a bounded job
    queue, per-job deadlines and a watchdog.

    The batch-evaluation service's execution substrate: [workers]
    domains pull thunks off one queue and run them to completion. The
    queue is {e bounded} — a {!submit} against a full queue is refused
    immediately with the queue's state ({!reject}) instead of blocking,
    which is the backpressure contract the socket front-end ({!Server})
    exposes to clients — and {!drain} stops intake, runs the backlog dry
    and joins every worker, so shutdown never abandons accepted work.

    {b Supervision}: a worker domain that dies under a job — a job
    raising {!Crash} (chaos injection, or code that must take its
    worker down) or [Out_of_memory] — fails that job with a typed
    {!Server_error.Worker_crashed}, spawns its own replacement, and
    publishes [server.worker_restarts]. The pool never loses capacity
    to a dead worker, and a faulted job still poisons only its own
    handle.

    {b Deadlines}: a {!submit} may carry a wall-clock budget measured
    from submission. A watchdog thread (period [watchdog_interval])
    fails over-budget jobs with a typed
    {!Server_error.Deadline_exceeded}, abandons the stuck worker
    (the domain is left to finish its thunk and exit quietly; its
    eventual result loses the first-fill race) and spawns a
    replacement, so a wedged evaluation cannot hold a worker forever.
    A job that expires while still queued is failed on dequeue without
    running. Abandoned and replaced domains are joined by {!drain}.

    Each worker domain installs the pool's metrics registry as its
    domain-local ambient ({!Lg_support.Metrics.install}), so code deep
    under a job (the APT store stack, the evaluator) publishes into the
    shared registry exactly as it would single-threaded. The pool itself
    publishes under [server.*]: [server.queue_depth] (gauge, current
    backlog), [server.queue_peak] (gauge, high-water mark),
    [server.jobs] / [server.rejections] (counters),
    [server.job_seconds] (histogram of submit-to-completion latency),
    its SLO split [server.queue_wait_seconds] (submit to dequeue) and
    [server.service_seconds] (dequeue to completion) on the
    {!Lg_support.Metrics.latency_buckets} ladder,
    and the supervision counters [server.worker_crashes],
    [server.worker_restarts] and [server.deadline_exceeded].

    Ambient {e tracers} are deliberately not installed here: a trace is
    one well-nested story, so per-job tracers are the callers' business
    ({!Batch} creates one per job and lets the parent
    {!Lg_support.Trace.absorb} it). *)

type t

type 'a handle
(** A pending result. *)

type reject = {
  rj_depth : int;  (** jobs queued when the submit was refused *)
  rj_capacity : int;
}

type lane = Interactive | Bulk
(** The two priority lanes. The queue is really two queues behind one
    shared capacity: a worker coming free always dequeues [Interactive]
    work (serve [job]/[update] traffic) before [Bulk] work (batch
    backlogs), so interactive latency survives a deep bulk backlog.
    Within a lane, FIFO order is preserved. Backpressure ([reject]) is
    computed on the {e combined} depth — saturation is a property of
    the pool, not of a lane. *)

val lane_name : lane -> string
(** ["interactive"] / ["bulk"] — the wire and metric-name spelling. *)

exception Crash of string
(** A job raising this kills its worker domain: the job fails with a
    typed {!Server_error.Worker_crashed} carrying the message, and the
    pool respawns the worker. This is how chaos injection (and any code
    that knows its domain is lost) exercises the supervision path. *)

val create :
  ?metrics:Lg_support.Metrics.t ->
  ?watchdog_interval:float ->
  ?slo_window:float ->
  workers:int ->
  queue_capacity:int ->
  unit ->
  t
(** Spawn [workers] domains (at least 1) and the watchdog thread.
    [queue_capacity] bounds the number of {e not yet started} jobs (at
    least 1); [watchdog_interval] (default 0.01 s, floor 1 ms) is the
    deadline-scan period and therefore the enforcement granularity;
    [metrics] (default {!Lg_support.Metrics.null}) receives the
    [server.*] series and becomes each worker's ambient registry.
    [slo_window] (default 60 s) is the frame width of the {e windowed}
    latency histograms [server.queue_wait_recent_seconds] /
    [server.service_recent_seconds] — the "current latency" view next
    to the process-lifetime SLO histograms. The pool also publishes the
    per-lane gauges [server.queue_depth_interactive] /
    [server.queue_depth_bulk] and the per-lane wait split
    [server.queue_wait_interactive_seconds] /
    [server.queue_wait_bulk_seconds]. *)

val workers : t -> int
val capacity : t -> int

val submit :
  ?label:string ->
  ?lane:lane ->
  ?deadline:float ->
  t ->
  (unit -> 'a) ->
  ('a handle, reject) result
(** Enqueue a job, or refuse it when the combined queue is at capacity.
    [label] names the job in typed diagnostics; [lane] (default
    [Interactive]) picks the priority lane; [deadline] (seconds,
    measured from this call — queue wait counts) arms the watchdog.
    @raise Invalid_argument on a pool that {!drain} has shut down. *)

val await : 'a handle -> ('a, exn) result
(** Block until the job has a result. [Error e] carries the exception
    the job raised — or the typed {!Server_error.Error} the supervision
    layer failed it with — a faulted job poisons only its own handle,
    never the pool. *)

val queue_depth : t -> int
(** Jobs accepted but not yet started. *)

val queue_peak : t -> int
(** High-water mark of {!queue_depth} over the pool's lifetime. *)

val live_workers : t -> int
(** Worker slots currently owned by a live domain — [workers] in steady
    state, briefly fewer mid-replacement. *)

val parked_workers : t -> int
(** Replaced domains (crashed workers' predecessors, watchdog-abandoned
    wedged workers) not yet joined by {!drain} — a persistent nonzero
    count under load is the "my workers keep dying" smell. *)

val restart_count : t -> int
(** Worker replacements so far (crash respawns + watchdog
    abandonments) — the [server.worker_restarts] counter, readable
    without a metrics registry. *)

val drain : t -> unit
(** Stop accepting work, run every queued job, join all workers
    (including replaced and abandoned domains — a wedged thunk must
    terminate for drain to return), stop the watchdog. Idempotent. *)
