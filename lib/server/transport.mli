(** The serve protocol's wire layer: message framing plus connection
    endpoints. The protocol itself ({!Server}) is transport-agnostic —
    it reads and writes frames on any [Unix.file_descr]; this module
    supplies the framing and the two ways of obtaining such a
    descriptor (Unix-domain socket or TCP), so a worker host across the
    network speaks exactly the wire format a local client does. *)

(** {1 Framing}

    Every message, both directions: a 4-byte big-endian payload length
    followed by that many bytes of JSON. *)

val max_frame : int
(** 16 MiB — the largest accepted frame payload. *)

val read_frame : Unix.file_descr -> string option
(** One frame's payload; [None] on clean EOF between frames.
    @raise Failure on a truncated frame or an out-of-range length. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame. @raise Failure above {!max_frame}. *)

(** {1 Endpoints} *)

type endpoint =
  | Unix_path of string  (** a Unix-domain socket path *)
  | Tcp of string * int  (** host (name or address literal), port *)

val to_string : endpoint -> string
(** [path] or [host:port] — diagnostics and worker labels. *)

val parse_tcp : string -> (endpoint, string) result
(** Parse a [HOST:PORT] spec (the [--listen]/[--connect]/[--worker]
    argument). The split is at the {e last} colon; port 0 is allowed
    (the OS picks a free port at {!listen}). *)

val nodelay : Unix.file_descr -> unit
(** Best-effort [TCP_NODELAY] — a no-op on non-TCP descriptors. The
    server's accept loop applies it to accepted connections; [connect]
    applies it on the client side. *)

val connect : endpoint -> Unix.file_descr
(** A connected stream socket ([TCP_NODELAY] set on TCP — responses
    are whole frames, coalescing buys nothing). Host names resolve via
    [getaddrinfo]. @raise Unix.Unix_error on refusal or resolution
    failure (a transient the retrying {!Server.request} client
    absorbs). *)

val listen : ?backlog:int -> endpoint -> Unix.file_descr * endpoint
(** A listening socket plus the endpoint actually bound — for
    [Tcp (host, 0)] the returned endpoint carries the OS-picked port.
    A stale Unix socket file is replaced; TCP listeners set
    [SO_REUSEADDR]. [backlog] defaults to 16. *)
