(** The evaluation service's socket front-end: [linguist serve].

    Listens on a Unix-domain socket and serves length-prefixed JSON
    requests against one shared {!Pool} and {!Session} cache — the
    long-running form of [linguist batch] for callers that want to pay
    grammar compilation once and stream evaluation requests at it.

    {b Framing}: every message (both directions) is a 4-byte big-endian
    payload length followed by that many bytes of JSON. Payloads above
    {!max_frame} are refused.

    {b Requests} (the ["op"] member selects):
    - [{"op":"ping"}] → [{"ok":true,"server":"linguist","protocol":1}]
    - [{"op":"metrics"}] → [{"ok":true,"metrics":{...}}] — a snapshot of
      the shared registry (the [server.*] series and whatever the jobs
      published).
    - [{"op":"job","job":{...}}] — one {!Jobfile} entry (same fields as
      a jobfile's [jobs] element); the response is the job's result
      record ({!Batch.outcome}) with [{"ok":true/false,...}]. When the
      queue is at capacity the request is {e rejected immediately}:
      [{"ok":false,"error":"saturated","queue_depth":N,"capacity":M}] —
      backpressure is the client's signal to retry later.
    - [{"op":"update","language":L,"source":S,"doc":D}] — incremental
      re-translation of the inline source text [S] under language [L]
      (see [docs/INCREMENTAL.md]). [doc] (optional) names the editor
      buffer: successive updates to the same doc diff against its cached
      tree and re-fire only the edit's consequences — when the server
      runs with incremental mode on; otherwise each update evaluates
      from scratch (still correct). Response:
      [{"ok":true,"session":digest,"doc":D,"outputs":{...},
      "tree_size":N,"incremental":{"kind":"fresh"|"incremental"|
      "fallback",...}}].
    - [{"op":"sessions"}] → the session cache's entries with their
      rebuild-cost weights, ages and parked document counts.
    - [{"op":"evict","digest":d}] (or ["language":L]) → drop one cached
      session and its documents; [{"op":"clear"}] → drop them all.
    - [{"op":"shutdown"}] → [{"ok":true,"stopping":true}]; the server
      stops accepting connections, drains the pool and returns.

    A connection handles any number of requests in sequence; each
    connection gets an OS thread, while evaluation itself happens on the
    pool's domains. *)

val max_frame : int
(** 16 MiB — the largest accepted request/response payload. *)

val protocol_version : int

val serve :
  ?queue_capacity:int ->
  ?session_capacity:int ->
  ?session_ttl:float ->
  ?metrics:Lg_support.Metrics.t ->
  ?incremental:Batch.incremental ->
  workers:int ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (an existing stale socket file is replaced), serve
    until a [shutdown] request, then drain and clean up the socket file.
    [queue_capacity] (default [4 * workers]) bounds queued jobs;
    [metrics] defaults to a fresh registry; [session_ttl] expires idle
    cached sessions. [incremental] turns per-document state keeping on
    for [update] ops/jobs ([--incremental] in the CLI); without it
    updates evaluate from scratch. Raises [Unix.Unix_error] if the
    socket cannot be bound. *)

(** {1 Client side} *)

val request : socket:string -> Lg_support.Json_out.t -> Lg_support.Json_out.t
(** One-shot client: connect, send one framed request, read the framed
    response. Raises [Unix.Unix_error] / [Failure] on connection or
    protocol errors. *)
