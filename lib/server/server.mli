(** The evaluation service's socket front-end: [linguist serve].

    Listens on a Unix-domain socket — and, with [?tcp], on a TCP
    endpoint too, which is how fabric worker hosts join a
    {!Lg_fabric.Coordinator} fleet — and serves length-prefixed JSON
    requests against one shared {!Pool} and {!Session} cache — the
    long-running form of [linguist batch] for callers that want to pay
    grammar compilation once and stream evaluation requests at it.
    Both listeners feed the same connection loop: the protocol is
    transport-agnostic (see {!Transport} and [docs/FABRIC.md]).

    {b Framing}: every message (both directions) is a 4-byte big-endian
    payload length followed by that many bytes of JSON. Payloads above
    {!max_frame} are refused.

    {b Trace propagation}: any request may carry a ["trace"] member — an
    opaque client-minted id (the {!request} client mints one per logical
    request with {!mint_trace_id}; retries reuse it). The server opens a
    per-request span tree ([request:<op>] › [queue.wait] › [service] ›
    session/chaos/pass spans › [response.write]) tagged with that id,
    absorbs it into the run-wide tracer ([serve --trace-out]), and echoes
    the id back as a ["trace"] member on [job]/[update] responses. See
    [docs/OBSERVABILITY.md].

    {b Requests} (the ["op"] member selects):
    - [{"op":"ping"}] → [{"ok":true,"server":"linguist","protocol":1}]
    - [{"op":"metrics"}] → [{"ok":true,"metrics":{...}}] — a snapshot of
      the shared registry (the [server.*] series and whatever the jobs
      published), histograms carrying derived [p50]/[p95]/[p99] members.
      With ["format":"prometheus"] the snapshot comes instead as one
      ["prometheus"] string member in text exposition format.
    - [{"op":"job","job":{...}}] — one {!Jobfile} entry (same fields as
      a jobfile's [jobs] element); the response is the job's result
      record ({!Batch.outcome}) with [{"ok":true/false,...}]. When the
      queue is at capacity the request is {e rejected immediately}:
      [{"ok":false,"error":"saturated","queue_depth":N,"capacity":M}] —
      backpressure is the client's signal to back off and retry, which
      the default {!request} client does for you (see below). A job
      carries its [deadline] (or inherits the server's [--deadline]
      default); over budget, crashing its worker, or naming a
      quarantined tenant fails it with the typed exit codes 50/51/52
      ({!Server_error}) in the outcome record.
    - [{"op":"health"}] → [{"ok":true,"status":"serving","workers":N,
      "workers_live":N,"workers_parked":N,"worker_restarts":N,
      "queue_depth":N,"queue_peak":N,"queue_capacity":N,"sessions":N,
      "quarantined":[{"digest":..,"label":..,"strikes":N}],
      "uptime_seconds":S}] — the readiness probe, with the worker-fleet
      and queue high-water columns the [top] dashboard renders. While
      draining it answers [{"ok":false,"error":"draining"}], so the
      CLI's exit code doubles as the probe result.
    - [{"op":"tenants"}] → [{"ok":true,"tenants":[...]}] — per-tenant
      (per session digest) accounting: one row per digest ever served
      with [jobs]/[ok] counts, [failures] keyed by exit class,
      [queue_wait_seconds]/[service_seconds] totals, the session cache's
      [hits]/[misses]/[evictions] for that digest, and the quarantine
      [strikes]/[quarantined] columns. Rows are sorted by label.
    - [{"op":"drain"}] → [{"ok":true,"draining":true,...}]; from then on
      [job]/[update] requests are refused with
      [{"ok":false,"error":"draining"}] while accepted work finishes.
      [ping]/[health]/[metrics]/[shutdown] still answer — [drain] then
      [shutdown] is the graceful stop.
    - [{"op":"update","language":L,"source":S,"doc":D}] — incremental
      re-translation of the inline source text [S] under language [L]
      (see [docs/INCREMENTAL.md]). [doc] (optional) names the editor
      buffer: successive updates to the same doc diff against its cached
      tree and re-fire only the edit's consequences — when the server
      runs with incremental mode on; otherwise each update evaluates
      from scratch (still correct). Response:
      [{"ok":true,"session":digest,"doc":D,"outputs":{...},
      "tree_size":N,"incremental":{"kind":"fresh"|"incremental"|
      "fallback",...}}].
    - [{"op":"sessions"}] → the session cache's entries with their
      rebuild-cost weights, ages and parked document counts.
    - [{"op":"evict","digest":d}] (or ["language":L]) → drop one cached
      session and its documents; [{"op":"clear"}] → drop them all.
    - [{"op":"shutdown"}] → [{"ok":true,"stopping":true}]; the server
      stops accepting connections, drains the pool and returns.

    {b Fabric ops} (the distributed-evaluation handshake — see
    [docs/FABRIC.md]):
    - [{"op":"fabric_job","job":{...},"lane":"bulk"|"interactive",
      "session":digest}] — a coordinator-dispatched job. The lane
      defaults to [bulk] (so interactive [job]/[update] traffic
      preempts it at dequeue); a job with a grammar tenant must carry
      the grammar's session [digest], which is resolved against the
      local spool. An unshipped digest answers the typed refusal
      [{"ok":false,"error":"grammar_miss","digest":d}] — the
      coordinator's cue to [grammar_put] and retry.
    - [{"op":"grammar_put","digest":d,"name":base,"source":S}] — ship a
      grammar source. The digest is recomputed over the received bytes
      and must match, else [{"ok":false,"error":"grammar digest
      mismatch","expected":..,"got":..}]; on success the source lands
      in a per-serve content-addressed spool and the op answers
      [{"ok":true,"digest":d,"spooled":path}].
    - [{"op":"grammar_have","digest":d}] →
      [{"ok":true,"digest":d,"have":true|false}] — spool membership,
      letting a coordinator pre-ship instead of paying a round-trip
      miss.

    A connection handles any number of requests in sequence; each
    connection gets an OS thread, while evaluation itself happens on the
    pool's domains. *)

val max_frame : int
(** 16 MiB — the largest accepted request/response payload. *)

val protocol_version : int

val serve :
  ?queue_capacity:int ->
  ?session_capacity:int ->
  ?session_ttl:float ->
  ?quarantine_after:int ->
  ?metrics:Lg_support.Metrics.t ->
  ?tracer:Lg_support.Trace.t ->
  ?events:Lg_support.Eventlog.t ->
  ?postmortem_dir:string ->
  ?postmortem_keep:int ->
  ?incremental:Batch.incremental ->
  ?chaos:Chaos.t ->
  ?deadline:float ->
  ?slo_window:float ->
  ?tenants_file:string ->
  ?tcp:string ->
  ?on_tcp_port:(int -> unit) ->
  workers:int ->
  socket:string ->
  unit ->
  unit
(** Bind [socket] (an existing stale socket file is replaced), serve
    until a [shutdown] request, then drain and clean up the socket file.
    [queue_capacity] (default [4 * workers]) bounds queued jobs;
    [metrics] defaults to a fresh registry; [session_ttl] expires idle
    cached sessions; [quarantine_after] (default 3) is the
    worker-fatal strike threshold ({!Session}). [incremental] turns
    per-document state keeping on for [update] ops/jobs ([--incremental]
    in the CLI); without it updates evaluate from scratch. [deadline]
    (seconds) is the default wall-clock budget for [job]/[update] ops
    that don't carry their own. [chaos] arms deterministic fault
    injection ({!Chaos}) — worker delays/crashes/wedges and response
    drops — for resilience testing.

    [tcp] ([HOST:PORT], the CLI's [--listen]) opens a second, TCP
    listener serving the identical protocol — port [0] lets the OS
    pick, and [on_tcp_port] (if given) is called once with the port
    actually bound, before the first accept. Raises [Invalid_argument]
    on an unparsable spec. [slo_window] (seconds, default 60) is the
    rolling window behind the [server.*_recent_seconds] histograms the
    [top] dashboard's current-latency columns read.

    [tenants_file] makes the per-tenant accounting ledger persistent:
    an existing snapshot is merged in before the listeners open (a
    malformed one raises [Failure]; a missing one is a first boot), and
    the ledger is written back atomically (temp file + rename) on
    [drain] and again at shutdown.

    [tracer] (default disabled) receives every request's absorbed span
    tree — the CLI's [serve --trace-out] exports it as a merged Chrome
    trace on shutdown. [events] is the flight recorder (default a fresh
    512-event ring; pass {!Lg_support.Eventlog.null} to disable) that
    records each job's lifecycle. [postmortem_dir] (created if missing)
    turns on crash dumps: a job failing with [deadline_exceeded] (50) or
    [worker_crashed] (51) writes its recent flight-recorder events as
    [postmortem-<job>-<n>.json] there; [postmortem_keep] caps retention
    — after each dump only the newest N survive, each removal counted
    by [server.postmortems_pruned]. Installs [SIGPIPE → ignore]
    process-wide, so a vanished client costs one connection, not the
    server. Raises [Unix.Unix_error] if the socket cannot be bound. *)

val prune_postmortems :
  dir:string -> keep:int -> metrics:Lg_support.Metrics.t -> int
(** Delete all but the newest [keep] [postmortem-*.json] dumps in [dir]
    (newest by mtime, name-descending tie-break — deterministic),
    bumping [server.postmortems_pruned] per removal; answers how many
    were deleted. Exposed for tests; {!serve} runs it after every dump
    when [postmortem_keep] is set. *)

(** {1 Client side} *)

val default_attempts : int
(** 5. *)

val mint_trace_id : unit -> string
(** A fresh 16-hex-char trace id (process-unique by pid, clock and a
    counter). {!request} calls this for any request document that does
    not already carry a ["trace"] member. *)

val request :
  ?attempts:int ->
  ?backoff:float ->
  ?budget:float ->
  ?jitter_seed:int ->
  socket:string ->
  Lg_support.Json_out.t ->
  Lg_support.Json_out.t
(** Send one framed request and return the framed response, minting a
    ["trace"] id onto the request document unless it already carries
    one, and retrying transient failures: connect errors (server not up
    yet, socket file missing), connections torn down mid-exchange (a
    chaotic [drop], a crashed-and-restarted server) and ["saturated"]
    backpressure responses. Any other response — including error responses — is
    final. Up to [attempts] tries (default {!default_attempts}; [1]
    disables retrying — the [--no-retry] behavior), sleeping an
    exponential backoff ([backoff], default 0.05 s nominal first step)
    with deterministic jitter seeded by [jitter_seed] between tries;
    [budget] (seconds) caps the {e total} wall clock spent, after which
    the next failure is re-raised as-is. Raises [Unix.Unix_error] /
    [Failure] when retries are exhausted.

    Note a retried [job] may execute twice server-side (a dropped
    response arrives after the work ran) — jobs are stateless apart
    from session warming, so a re-run answers identically. *)

val request_endpoint :
  ?attempts:int ->
  ?backoff:float ->
  ?budget:float ->
  ?jitter_seed:int ->
  endpoint:Transport.endpoint ->
  Lg_support.Json_out.t ->
  Lg_support.Json_out.t
(** {!request} generalized over {!Transport.endpoint} — the same retry
    and trace-minting behavior against a Unix socket path or a TCP
    worker host. [request ~socket] is
    [request_endpoint ~endpoint:(Unix_path socket)]. Network
    transients (host unreachable, connect timeout) retry exactly like
    a not-yet-bound socket file does. *)
