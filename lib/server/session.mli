(** Compiled-grammar sessions and their cost-aware cache.

    A session is the expensive, immutable part of serving a job: a
    grammar pushed through the whole {!Linguist.Driver} pipeline — parse
    tables, evaluation plan, generated code — or a ready-made language
    translator from {!Lg_languages}. Building one costs seconds; every
    job that evaluates against the same grammar shares the same session,
    so a batch of N inputs compiles once and evaluates N times (the
    paper's one-grammar/many-translations economics).

    Sessions are keyed by a {!digest} of what they were built from and
    held in a bounded cache. The cache is concurrency-aware: when
    several pool workers request the same absent key at once, exactly one
    builds while the rest block until the session is ready
    ([Building]/[Ready] states under one mutex+condition). A build that
    raises releases its key — waiters retry, and a deterministic grammar
    error simply fails each requester. Entries under construction are
    never evicted.

    {b Eviction is cost-aware}, not plain LRU: each entry's weight is
    its measured build seconds plus a term for its LALR table bytes
    ([lalr.table_bytes] — what a rebuild would have to reconstruct), and
    the cache runs the GreedyDual policy: an entry's priority is the
    global floor plus its weight, refreshed on every hit; eviction takes
    the minimum-priority entry and raises the floor to it. Cheap stale
    entries go first; an expensive session must be idle much longer
    before it yields its slot. An optional TTL expires entries that have
    sat untouched regardless of weight.

    {b Quarantine} mirrors the APT layer's page quarantine one level
    up: the serving layer {!strike}s a digest each time one of its jobs
    takes a worker down (domain crash, watchdog timeout). At
    [quarantine_after] strikes (default 3) the digest is quarantined —
    its resident entry is dropped and {!find_or_build} raises a typed
    {!Server_error.Session_quarantined} without building — so one bad
    grammar cannot consume the fleet one worker at a time. {!evict} (or
    {!clear}) lifts the quarantine along with the entry.

    The cache also parks {b per-document incremental state}
    ({!Lg_incremental.Incr.state}) next to the session that owns it:
    [update] ops fetch a {!doc_slot} keyed by (session digest, document
    id). Slots die with their session — evicting a session drops its
    documents — and are themselves bounded ([doc_capacity], stalest
    first). *)

type payload =
  | Artifact of Linguist.Driver.artifact
      (** a grammar compiled by the native driver (check/stats jobs) *)
  | Translator of Linguist.Translator.t
      (** a complete translator: tables + plan + scanner + name table
          (analyze/translate jobs) — safe to share across domains *)

type t = {
  s_digest : string;
  s_label : string;  (** human-readable: ["grammar:desk_calc.ag"], … *)
  s_payload : payload;
}

val digest : kind:string -> source:string -> string
(** Stable key: an MD5 over the session kind and the full source text it
    compiles (two grammars differing in one byte get distinct
    sessions). *)

(** {1 The cache} *)

type cache

val create_cache :
  ?capacity:int ->
  ?doc_capacity:int ->
  ?ttl:float ->
  ?quarantine_after:int ->
  ?clock:(unit -> float) ->
  ?metrics:Lg_support.Metrics.t ->
  unit ->
  cache
(** [capacity] (default 8, at least 1) bounds resident sessions;
    [doc_capacity] (default 128) bounds parked per-document states
    across all sessions. [ttl] (seconds; default none) expires entries
    idle longer than that. [quarantine_after] (default 3, at least 1)
    is the worker-fatal strike count at which a digest is quarantined.
    [clock] (default [Unix.gettimeofday]) is injectable for
    deterministic TTL tests. [metrics] (default null) counts every
    completed build as [server.session_builds] — the per-worker
    "each grammar compiled exactly once" signal the distributed
    coordinator's placement checks read. *)

val length : cache -> int
val capacity : cache -> int

val stats : cache -> int * int
(** [(hits, misses)] so far — misses count builds started. *)

val eviction_stats : cache -> int * int
(** [(evictions, ttl_expirations)] so far. *)

val tenant_stats : cache -> digest:string -> int * int * int
(** [(hits, misses, evictions)] charged to one digest over the cache's
    whole lifetime — accounting survives the entry itself (the [tenants]
    serve op's cache column). All zeros for a digest never requested. *)

val find_or_build :
  cache ->
  ?weight:float ->
  digest:string ->
  label:string ->
  build:(unit -> payload) ->
  unit ->
  t
(** The session for [digest], building it with [build] on a miss. Blocks
    while another worker is building the same digest. Re-raises whatever
    [build] raises. [weight] overrides the measured rebuild-cost weight
    (build seconds + table bytes / 10{^7}) — deterministic tests pin
    it.
    @raise Server_error.Error
      ([Session_quarantined]) when the digest has accumulated
      [quarantine_after] strikes — without looking up or building. *)

val evict : cache -> digest:string -> bool
(** Drop one Ready entry (and its parked documents) {e and} lift any
    quarantine on the digest; [false] when the digest had neither an
    entry nor strikes, or is still building. *)

val clear : cache -> int
(** Drop every Ready entry, all parked documents and all strike
    records; returns how many sessions were dropped. Entries under
    construction survive. *)

(** {1 Quarantine} *)

val strike : cache -> digest:string -> label:string -> int
(** Record one worker-fatal failure against [digest] (the serving layer
    calls this when a job crashes its worker or blows its deadline) and
    return the new strike count. Crossing the threshold drops the
    digest's resident entry. *)

val quarantine_threshold : cache -> int

val is_quarantined : cache -> digest:string -> bool

val strike_count : cache -> digest:string -> int
(** Strikes recorded so far (0 when clean); counts below the threshold
    do not block requests. *)

val quarantined : cache -> (string * string * int) list
(** Every quarantined digest as [(digest, label, strikes)], sorted by
    label — the [health] serve op's listing. *)

type info = {
  i_digest : string;
  i_label : string;
  i_weight : float;
  i_build_seconds : float;
  i_age : float;  (** seconds since the build finished starting *)
  i_idle : float;  (** seconds since the last hit *)
  i_docs : int;  (** parked per-document states *)
}

val entries_info : cache -> info list
(** A snapshot of every Ready entry, sorted by label — the [sessions]
    serve op. *)

(** {1 Per-document incremental state} *)

type doc_slot = {
  doc_lock : Mutex.t;
      (** serialises updates to one document; hold it across the whole
          {!Lg_incremental.Incr.update} *)
  mutable doc_state : Lg_incremental.Incr.state option;
  mutable doc_last_use : int;
}

val doc_slot : cache -> digest:string -> doc:string -> doc_slot
(** The (create-on-first-use) slot for a document of a session. *)

val doc_count : cache -> int

(** {1 Standard sessions} *)

val grammar_session :
  cache ->
  ?options:Linguist.Driver.options ->
  file:string ->
  source:string ->
  unit ->
  t
(** An {!Artifact} session: [source] through every driver overlay.
    @raise Failure with the rendered diagnostics when the grammar has
    errors. *)

val translator_session :
  cache ->
  ?options:Linguist.Driver.options ->
  file:string ->
  source:string ->
  unit ->
  t
(** A {!Translator} session for an arbitrary [.ag] source — compiled
    with the grammar-derived symbolic scanner
    ({!Linguist.Translator.of_source}), keyed by the source's content
    digest. This is how ["grammar"]-tenant translate/update jobs share
    one compilation per distinct grammar text (the corpus multi-tenant
    path; see [docs/CORPUS.md]).
    @raise Failure with the rendered diagnostics when the grammar has
    errors. *)

val language_session : cache -> string -> t
(** A {!Translator} session for a built-in language — one of
    {!language_names}: ["desk_calc"], ["assembler"], ["knuth_binary"],
    ["pascal"], or ["linguist"] (the self-hosted analyzer of [.ag]
    sources, experiment E1's workload).
    @raise Failure on an unknown name. *)

val language_names : unit -> string list
