(** Compiled-grammar sessions and their LRU cache.

    A session is the expensive, immutable part of serving a job: a
    grammar pushed through the whole {!Linguist.Driver} pipeline — parse
    tables, evaluation plan, generated code — or a ready-made language
    translator from {!Lg_languages}. Building one costs seconds; every
    job that evaluates against the same grammar shares the same session,
    so a batch of N inputs compiles once and evaluates N times (the
    paper's one-grammar/many-translations economics).

    Sessions are keyed by a {!digest} of what they were built from and
    held in a bounded LRU {!cache}. The cache is concurrency-aware: when
    several pool workers request the same absent key at once, exactly one
    builds while the rest block until the session is ready
    ([Building]/[Ready] states under one mutex+condition). A build that
    raises releases its key — waiters retry, and a deterministic grammar
    error simply fails each requester. Entries under construction are
    never evicted. *)

type payload =
  | Artifact of Linguist.Driver.artifact
      (** a grammar compiled by the native driver (check/stats jobs) *)
  | Translator of Linguist.Translator.t
      (** a complete translator: tables + plan + scanner + name table
          (analyze/translate jobs) — safe to share across domains *)

type t = {
  s_digest : string;
  s_label : string;  (** human-readable: ["grammar:desk_calc.ag"], … *)
  s_payload : payload;
}

val digest : kind:string -> source:string -> string
(** Stable key: an MD5 over the session kind and the full source text it
    compiles (two grammars differing in one byte get distinct
    sessions). *)

(** {1 The cache} *)

type cache

val create_cache : ?capacity:int -> unit -> cache
(** LRU over ready sessions; [capacity] (default 8, at least 1) bounds
    resident sessions. *)

val length : cache -> int
val capacity : cache -> int

val stats : cache -> int * int
(** [(hits, misses)] so far — misses count builds started. *)

val find_or_build :
  cache -> digest:string -> label:string -> build:(unit -> payload) -> t
(** The session for [digest], building it with [build] on a miss. Blocks
    while another worker is building the same digest. Re-raises whatever
    [build] raises. *)

(** {1 Standard sessions} *)

val grammar_session :
  cache ->
  ?options:Linguist.Driver.options ->
  file:string ->
  source:string ->
  unit ->
  t
(** An {!Artifact} session: [source] through every driver overlay.
    @raise Failure with the rendered diagnostics when the grammar has
    errors. *)

val language_session : cache -> string -> t
(** A {!Translator} session for a built-in language — one of
    {!language_names}: ["desk_calc"], ["assembler"], ["knuth_binary"],
    ["pascal"], or ["linguist"] (the self-hosted analyzer of [.ag]
    sources, experiment E1's workload).
    @raise Failure on an unknown name. *)

val language_names : unit -> string list
