(* One lock/condition pair guards the queue; workers sleep on [nonempty]
   and are woken by submits and by drain. Results travel through per-job
   cells with their own lock/condition, so awaiting one job never
   contends with the queue. *)

type reject = { rj_depth : int; rj_capacity : int }

type 'a handle = {
  h_lock : Mutex.t;
  h_done : Condition.t;
  mutable h_result : ('a, exn) result option;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  capacity : int;
  n_workers : int;
  mutable closing : bool;
  mutable domains : unit Domain.t list;  (* emptied by drain *)
  metrics : Lg_support.Metrics.t;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let publish_depth t depth =
  Lg_support.Metrics.set_int t.metrics "server.queue_depth" depth;
  Lg_support.Metrics.set_max t.metrics "server.queue_peak" (float_of_int depth)

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closing do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* draining, queue dry *)
  else begin
    let job = Queue.pop t.queue in
    publish_depth t (Queue.length t.queue);
    Mutex.unlock t.lock;
    job ();
    worker_loop t
  end

let worker t () =
  (* the pool's registry becomes this domain's ambient, so store layers
     and the evaluator publish into it exactly as they do single-threaded *)
  Lg_support.Metrics.install t.metrics;
  (* minor collections are stop-the-world across every domain in OCaml 5:
     with the 256k-word default, allocation-heavy evaluation makes the
     domains spend their time synchronizing instead of evaluating. A
     larger per-domain minor heap restores throughput; an explicit
     OCAMLRUNPARAM s=... above this floor is respected. *)
  let g = Gc.get () in
  let floor_words = 4 * 1024 * 1024 in
  if g.Gc.minor_heap_size < floor_words then
    Gc.set { g with Gc.minor_heap_size = floor_words };
  worker_loop t

let create ?(metrics = Lg_support.Metrics.null) ~workers ~queue_capacity () =
  let workers = max 1 workers and capacity = max 1 queue_capacity in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity;
      n_workers = workers;
      closing = false;
      domains = [];
      metrics;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker t));
  t

let workers t = t.n_workers

let submit t f =
  let cell =
    { h_lock = Mutex.create (); h_done = Condition.create (); h_result = None }
  in
  let submitted_at = Unix.gettimeofday () in
  let job () =
    let result = try Ok (f ()) with e -> Error e in
    Lg_support.Metrics.observe t.metrics "server.job_seconds"
      (Unix.gettimeofday () -. submitted_at);
    Mutex.lock cell.h_lock;
    cell.h_result <- Some result;
    Condition.broadcast cell.h_done;
    Mutex.unlock cell.h_lock
  in
  locked t @@ fun () ->
  if t.closing then invalid_arg "Pool.submit: pool is draining";
  let depth = Queue.length t.queue in
  if depth >= t.capacity then begin
    Lg_support.Metrics.incr t.metrics "server.rejections";
    Error { rj_depth = depth; rj_capacity = t.capacity }
  end
  else begin
    Queue.push job t.queue;
    Lg_support.Metrics.incr t.metrics "server.jobs";
    publish_depth t (depth + 1);
    Condition.signal t.nonempty;
    Ok cell
  end

let await cell =
  Mutex.lock cell.h_lock;
  while cell.h_result = None do
    Condition.wait cell.h_done cell.h_lock
  done;
  let r = Option.get cell.h_result in
  Mutex.unlock cell.h_lock;
  r

let queue_depth t = locked t (fun () -> Queue.length t.queue)

let drain t =
  let domains =
    locked t (fun () ->
        t.closing <- true;
        Condition.broadcast t.nonempty;
        let d = t.domains in
        t.domains <- [];
        d)
  in
  List.iter Domain.join domains;
  publish_depth t 0
