(* One lock/condition pair guards the queue and the worker slot table;
   workers sleep on [nonempty] and are woken by submits and by drain.
   Results travel through per-job cells with their own lock/condition
   and first-fill-wins semantics, so awaiting one job never contends
   with the queue — and the watchdog can fail a cell that the (possibly
   wedged) worker will try to fill much later.

   Supervision model: each of the [n_workers] slots is owned by exactly
   one live domain, identified by the slot's epoch. A worker that dies
   under a job (an exception escaping the job harness: Crash,
   Out_of_memory) spawns its own successor into its slot before
   exiting; the watchdog abandons a worker stuck past its job's
   deadline by bumping the slot epoch and spawning a replacement — the
   abandoned domain notices the epoch change when its job finally
   returns and exits quietly. Replaced domains are parked on a zombie
   list and joined by [drain]. *)

type reject = { rj_depth : int; rj_capacity : int }

type lane = Interactive | Bulk

let lane_name = function Interactive -> "interactive" | Bulk -> "bulk"

exception Crash of string

type 'a handle = {
  h_lock : Mutex.t;
  h_done : Condition.t;
  mutable h_result : ('a, exn) result option;
}

(* first fill wins: the watchdog and the worker may race to complete a
   job, and exactly one side's result must stand *)
let fill cell result =
  Mutex.lock cell.h_lock;
  let filled = cell.h_result = None in
  if filled then begin
    cell.h_result <- Some result;
    Condition.broadcast cell.h_done
  end;
  Mutex.unlock cell.h_lock;
  filled

type inflight = {
  if_label : string;
  if_submitted : float;
  if_deadline : float option;  (* absolute wall-clock expiry *)
  if_fail : exn -> bool;  (* fail the job's cell; true if we won *)
}

type slot = {
  mutable s_epoch : int;
  mutable s_domain : unit Domain.t option;
  mutable s_inflight : inflight option;
}

type packaged = {
  p_inflight : inflight;
  p_run : unit -> unit;  (* fills the cell; raises only to kill the worker *)
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  (* two priority lanes behind one capacity: interactive work (serve
     [job]/[update] traffic) always dequeues before bulk (batch) work,
     so a deep batch backlog cannot starve an editor round-trip *)
  q_interactive : packaged Queue.t;
  q_bulk : packaged Queue.t;
  capacity : int;
  n_workers : int;
  mutable closing : bool;
  slots : slot array;
  mutable zombies : unit Domain.t list;  (* replaced domains, joined by drain *)
  watchdog_interval : float;
  watchdog_stop : bool Atomic.t;
  mutable watchdog : Thread.t option;
  metrics : Lg_support.Metrics.t;
  slo_window : float;  (* frame width of the *_recent_seconds histograms *)
  (* mirrored into metrics, but kept here too so health probes can
     answer on a pool whose registry is disabled *)
  mutable peak : int;
  mutable restarts : int;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let total_depth t = Queue.length t.q_interactive + Queue.length t.q_bulk
let queues_empty t = Queue.is_empty t.q_interactive && Queue.is_empty t.q_bulk

(* interactive preempts bulk at dequeue: a worker coming free always
   drains the interactive lane first *)
let pop_next t =
  if not (Queue.is_empty t.q_interactive) then Queue.pop t.q_interactive
  else Queue.pop t.q_bulk

let publish_depth t =
  let di = Queue.length t.q_interactive and db = Queue.length t.q_bulk in
  let depth = di + db in
  if depth > t.peak then t.peak <- depth;
  Lg_support.Metrics.set_int t.metrics "server.queue_depth" depth;
  Lg_support.Metrics.set_int t.metrics "server.queue_depth_interactive" di;
  Lg_support.Metrics.set_int t.metrics "server.queue_depth_bulk" db;
  Lg_support.Metrics.set_max t.metrics "server.queue_peak" (float_of_int depth)

let deadline_error inf =
  let deadline =
    match inf.if_deadline with
    | Some d -> d -. inf.if_submitted
    | None -> 0.0
  in
  Server_error.Error
    (Server_error.Deadline_exceeded
       {
         job = inf.if_label;
         deadline;
         elapsed = Unix.gettimeofday () -. inf.if_submitted;
       })

let expired inf now =
  match inf.if_deadline with Some d -> now > d | None -> false

(* under the lock: replace [slot]'s domain with a fresh worker; the old
   domain (dying or abandoned) is parked for drain to join *)
let rec replace_worker t slot =
  slot.s_epoch <- slot.s_epoch + 1;
  slot.s_inflight <- None;
  (match slot.s_domain with
  | Some d -> t.zombies <- d :: t.zombies
  | None -> ());
  let epoch = slot.s_epoch in
  slot.s_domain <- Some (Domain.spawn (fun () -> worker t slot epoch));
  t.restarts <- t.restarts + 1;
  Lg_support.Metrics.incr t.metrics "server.worker_restarts"

and worker t slot epoch =
  (* the pool's registry becomes this domain's ambient, so store layers
     and the evaluator publish into it exactly as they do single-threaded *)
  Lg_support.Metrics.install t.metrics;
  (* minor collections are stop-the-world across every domain in OCaml 5:
     with the 256k-word default, allocation-heavy evaluation makes the
     domains spend their time synchronizing instead of evaluating. A
     larger per-domain minor heap restores throughput; an explicit
     OCAMLRUNPARAM s=... above this floor is respected. *)
  let g = Gc.get () in
  let floor_words = 4 * 1024 * 1024 in
  if g.Gc.minor_heap_size < floor_words then
    Gc.set { g with Gc.minor_heap_size = floor_words };
  worker_loop t slot epoch

and worker_loop t slot epoch =
  Mutex.lock t.lock;
  if slot.s_epoch <> epoch then Mutex.unlock t.lock (* abandoned: die quietly *)
  else begin
    while queues_empty t && not t.closing do
      Condition.wait t.nonempty t.lock
    done;
    if queues_empty t then Mutex.unlock t.lock (* draining, queue dry *)
    else begin
      let p = pop_next t in
      publish_depth t;
      (* a job that expired while queued is failed without running it:
         its client already gave up, so running it only burns a worker *)
      if expired p.p_inflight (Unix.gettimeofday ()) then begin
        Mutex.unlock t.lock;
        if p.p_inflight.if_fail (deadline_error p.p_inflight) then
          Lg_support.Metrics.incr t.metrics "server.deadline_exceeded";
        worker_loop t slot epoch
      end
      else begin
        slot.s_inflight <- Some p.p_inflight;
        Mutex.unlock t.lock;
        let death = (try p.p_run (); None with e -> Some e) in
        Mutex.lock t.lock;
        let abandoned = slot.s_epoch <> epoch in
        if not abandoned then slot.s_inflight <- None;
        match (death, abandoned) with
        | None, false ->
            Mutex.unlock t.lock;
            worker_loop t slot epoch
        | _, true ->
            (* the watchdog already replaced us; our result (if any) lost
               the fill race, so just let this domain end *)
            Mutex.unlock t.lock
        | Some _, false ->
            (* the worker domain is dying: spawn our own successor unless
               the pool is closing with nothing left to do *)
            if not (t.closing && queues_empty t) then replace_worker t slot;
            Mutex.unlock t.lock
      end
    end
  end

let watchdog_loop t () =
  while not (Atomic.get t.watchdog_stop) do
    Thread.delay t.watchdog_interval;
    let now = Unix.gettimeofday () in
    locked t (fun () ->
        Array.iter
          (fun slot ->
            match slot.s_inflight with
            | Some inf when expired inf now ->
                if inf.if_fail (deadline_error inf) then begin
                  Lg_support.Metrics.incr t.metrics "server.deadline_exceeded";
                  replace_worker t slot
                end
                else
                  (* the job completed between our check and the fill:
                     leave the worker alone *)
                  slot.s_inflight <- None
            | _ -> ())
          t.slots)
  done

let create ?(metrics = Lg_support.Metrics.null) ?(watchdog_interval = 0.01)
    ?(slo_window = 60.0) ~workers ~queue_capacity () =
  let workers = max 1 workers and capacity = max 1 queue_capacity in
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      q_interactive = Queue.create ();
      q_bulk = Queue.create ();
      capacity;
      n_workers = workers;
      closing = false;
      slots =
        Array.init workers (fun _ ->
            { s_epoch = 0; s_domain = None; s_inflight = None });
      zombies = [];
      watchdog_interval = Float.max 0.001 watchdog_interval;
      watchdog_stop = Atomic.make false;
      watchdog = None;
      metrics;
      slo_window = Float.max 0.001 slo_window;
      peak = 0;
      restarts = 0;
    }
  in
  Array.iter
    (fun slot -> slot.s_domain <- Some (Domain.spawn (fun () -> worker t slot 0)))
    t.slots;
  t.watchdog <- Some (Thread.create (watchdog_loop t) ());
  t

let workers t = t.n_workers
let capacity t = t.capacity

let submit ?(label = "") ?(lane = Interactive) ?deadline t f =
  let cell =
    { h_lock = Mutex.create (); h_done = Condition.create (); h_result = None }
  in
  let submitted_at = Unix.gettimeofday () in
  let inflight =
    {
      if_label = label;
      if_submitted = submitted_at;
      if_deadline = Option.map (fun d -> submitted_at +. Float.max 0.0 d) deadline;
      if_fail = (fun e -> fill cell (Error e));
    }
  in
  let run () =
    (* the SLO split: queue wait ends when a worker picks the job up,
       service is everything from there to completion — both on the
       latency ladder, where job_seconds (their sum) keeps its coarse
       historical buckets *)
    let started_at = Unix.gettimeofday () in
    let wait = started_at -. submitted_at in
    Lg_support.Metrics.observe t.metrics
      ~buckets:Lg_support.Metrics.latency_buckets "server.queue_wait_seconds"
      wait;
    (* the per-lane wait split the coordinator's placement bench reads:
       interactive waits must stay short even under a bulk backlog *)
    Lg_support.Metrics.observe t.metrics
      ~buckets:Lg_support.Metrics.latency_buckets
      (Printf.sprintf "server.queue_wait_%s_seconds" (lane_name lane))
      wait;
    Lg_support.Metrics.observe_window t.metrics
      ~buckets:Lg_support.Metrics.latency_buckets ~window:t.slo_window
      "server.queue_wait_recent_seconds" wait;
    let result =
      match f () with
      | v -> `Ok v
      | exception Crash msg ->
          `Died
            (Server_error.Error
               (Server_error.Worker_crashed { job = label; detail = msg }))
      | exception Out_of_memory ->
          (* the domain's heap state is suspect: fail the job typed and
             recycle the worker, exactly as for an explicit crash *)
          `Died
            (Server_error.Error
               (Server_error.Worker_crashed
                  { job = label; detail = "Out_of_memory" }))
      | exception e -> `Err e
    in
    let finished_at = Unix.gettimeofday () in
    Lg_support.Metrics.observe t.metrics
      ~buckets:Lg_support.Metrics.latency_buckets "server.service_seconds"
      (finished_at -. started_at);
    Lg_support.Metrics.observe_window t.metrics
      ~buckets:Lg_support.Metrics.latency_buckets ~window:t.slo_window
      "server.service_recent_seconds" (finished_at -. started_at);
    Lg_support.Metrics.observe t.metrics "server.job_seconds"
      (finished_at -. submitted_at);
    match result with
    | `Ok v -> ignore (fill cell (Ok v))
    | `Err e -> ignore (fill cell (Error e))
    | `Died e ->
        (* count before publishing the result: an awaiter reading the
           registry right after [await] must see the crash *)
        Lg_support.Metrics.incr t.metrics "server.worker_crashes";
        ignore (fill cell (Error e));
        raise (Crash "worker lost")
  in
  locked t @@ fun () ->
  if t.closing then invalid_arg "Pool.submit: pool is draining";
  let depth = total_depth t in
  if depth >= t.capacity then begin
    Lg_support.Metrics.incr t.metrics "server.rejections";
    Error { rj_depth = depth; rj_capacity = t.capacity }
  end
  else begin
    let q = match lane with Interactive -> t.q_interactive | Bulk -> t.q_bulk in
    Queue.push { p_inflight = inflight; p_run = run } q;
    Lg_support.Metrics.incr t.metrics "server.jobs";
    publish_depth t;
    Condition.signal t.nonempty;
    Ok cell
  end

let await cell =
  Mutex.lock cell.h_lock;
  while cell.h_result = None do
    Condition.wait cell.h_done cell.h_lock
  done;
  let r = Option.get cell.h_result in
  Mutex.unlock cell.h_lock;
  r

let queue_depth t = locked t (fun () -> total_depth t)
let queue_peak t = locked t (fun () -> t.peak)
let restart_count t = locked t (fun () -> t.restarts)

let live_workers t =
  locked t (fun () ->
      Array.fold_left
        (fun n slot -> if slot.s_domain = None then n else n + 1)
        0 t.slots)

let parked_workers t = locked t (fun () -> List.length t.zombies)

let drain t =
  locked t (fun () ->
      t.closing <- true;
      Condition.broadcast t.nonempty);
  (* workers may still respawn successors while the backlog drains (a
     crash with jobs left must not strand them), so join in rounds until
     a sweep finds no live domain *)
  let rec join_all () =
    let ds =
      locked t (fun () ->
          let slot_domains =
            Array.to_list t.slots
            |> List.filter_map (fun slot ->
                   let d = slot.s_domain in
                   slot.s_domain <- None;
                   d)
          in
          let ds = slot_domains @ t.zombies in
          t.zombies <- [];
          ds)
    in
    match ds with
    | [] -> ()
    | ds ->
        List.iter Domain.join ds;
        join_all ()
  in
  join_all ();
  Atomic.set t.watchdog_stop true;
  (match t.watchdog with
  | Some th ->
      t.watchdog <- None;
      Thread.join th
  | None -> ());
  publish_depth t
