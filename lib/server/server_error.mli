(** Typed errors for the serving layer — the {!Pool}'s supervision and
    deadline machinery and the {!Session} cache's quarantine.

    Mirrors {!Lg_apt.Apt_error} one layer up: where that module types
    storage-integrity failures (exit codes 40–44), this one types
    {e service} failures — a job over its wall-clock budget, a worker
    domain lost mid-job, a grammar whose jobs keep killing workers —
    with stable exit codes 50–52 so batch outcome records and socket
    clients can dispatch on the class (see [docs/SERVER.md]'s
    failure-modes matrix). *)

type t =
  | Deadline_exceeded of { job : string; deadline : float; elapsed : float }
      (** The pool watchdog failed the job: [elapsed] seconds since
          submission exceeded the [deadline] budget (queue wait included
          — an expired job that never started is failed on dequeue).
          The worker that was running it is abandoned and replaced. *)
  | Worker_crashed of { job : string; detail : string }
      (** The worker domain died under the job — an exception that
          escapes the job harness ({!Pool.Crash}, [Out_of_memory]) — and
          was respawned. The job is failed with this diagnostic; its
          siblings and the pool survive. *)
  | Session_quarantined of { digest : string; label : string; strikes : int }
      (** The session's jobs have crashed workers or blown deadlines
          [strikes] times — at or past the cache's quarantine threshold
          — so requests naming it are refused without evaluating.
          [evict] (or [clear]) lifts the quarantine. *)

exception Error of t

val raise_ : t -> 'a

val exit_code : t -> int
(** Stable exit code for outcome records, pinned by [test_server.ml]:
    deadline exceeded 50, worker crashed 51, session quarantined 52.
    Never renumbered (40–44 remain the APT classes). *)

val to_string : t -> string

val class_name : t -> string
(** Short machine-readable class tag: ["deadline_exceeded"],
    ["worker_crashed"], ["session_quarantined"]. *)
