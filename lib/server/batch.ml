(* Per-job isolation is directory-deep: every job gets a fresh private
   temp directory as its APT store root, so two jobs evaluating the same
   grammar at once can never collide on an intermediate file, and a
   faulted job's damaged files vanish with its directory. *)

let tmp_counter = Atomic.make 0

let make_temp_dir () =
  let rec go attempts =
    let name =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "linguist-job-%d-%d" (Unix.getpid ())
           (Atomic.fetch_and_add tmp_counter 1))
    in
    match Unix.mkdir name 0o700 with
    | () -> name
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when attempts < 1000 ->
        go (attempts + 1)
  in
  go 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun entry -> rm_rf (Filename.concat path entry))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type outcome = {
  o_id : string;
  o_op : string;
  o_file : string;
  o_ok : bool;
  o_exit : int;
  o_error : string option;
  o_payload : Lg_support.Json_out.t;
  o_seconds : float;
}

type summary = {
  outcomes : outcome list;
  n_ok : int;
  n_failed : int;
  workers : int;
  wall_seconds : float;
}

open Lg_support.Json_out

let engine_options_of (j : Jobfile.job) ~dir =
  let config =
    {
      Lg_apt.Apt_store.default_config with
      dir = Some dir;
      page_size =
        Option.value j.Jobfile.j_page_size
          ~default:Lg_apt.Apt_store.default_config.Lg_apt.Apt_store.page_size;
      faults = j.Jobfile.j_faults;
    }
  in
  {
    Linguist.Engine.default_options with
    backend = Lg_apt.Aptfile.backend_of_store_name ~config j.Jobfile.j_store;
    depth_budget =
      Option.value j.Jobfile.j_depth_budget
        ~default:Linguist.Engine.default_depth_budget;
    node_budget = Option.value j.Jobfile.j_node_budget ~default:0;
  }

let check_payload (a : Linguist.Driver.artifact) =
  Obj
    [
      ("passes", int a.Linguist.Driver.passes.Linguist.Pass_assign.n_passes);
      ( "first_direction",
        Str
          (match
             Linguist.Pass_assign.direction a.Linguist.Driver.passes 1
           with
          | Linguist.Pass_assign.L2r -> "left-to-right"
          | Linguist.Pass_assign.R2l -> "right-to-left") );
      ("diagnostics", int (Lg_support.Diag.count a.Linguist.Driver.diag));
      ("source_lines", int a.Linguist.Driver.source_lines);
    ]

let analyze_payload (a : Lg_languages.Linguist_ag.analysis) =
  Obj
    [
      ("symbols", int a.Lg_languages.Linguist_ag.n_symbols);
      ("attr_decls", int a.Lg_languages.Linguist_ag.n_attr_decls);
      ("productions", int a.Lg_languages.Linguist_ag.n_productions);
      ("semantic_functions", int a.Lg_languages.Linguist_ag.n_semantic_functions);
      ("copy_estimate", int a.Lg_languages.Linguist_ag.n_copy_estimate);
      ("terminals", int a.Lg_languages.Linguist_ag.n_terminals);
      ("nonterminals", int a.Lg_languages.Linguist_ag.n_nonterminals);
      ("limbs", int a.Lg_languages.Linguist_ag.n_limbs);
      ( "messages",
        Arr
          (List.map
             (fun (line, tag, name) ->
               Obj [ ("line", int line); ("tag", Str tag); ("name", Str name) ])
             a.Lg_languages.Linguist_ag.messages) );
      ("report_entries", int (List.length a.Lg_languages.Linguist_ag.report));
    ]

(* How [update] jobs evaluate: threshold and state spilling for the
   incremental subsystem. [None] (the default) still serves updates —
   each one evaluates from scratch — but keeps no per-document state. *)
type incremental = { inc_threshold : float; inc_spill : bool }

let default_incremental = { inc_threshold = 0.5; inc_spill = false }

let translate_payload (tr : Linguist.Translator.translation) =
  Obj
    [
      ( "outputs",
        Obj
          (List.map
             (fun (name, v) -> (name, Str (Lg_support.Value.to_string v)))
             tr.Linguist.Translator.outputs) );
      ("tree_size", int tr.Linguist.Translator.tree_size);
      ("input_lines", int tr.Linguist.Translator.input_lines);
      ( "rules_evaluated",
        int
          tr.Linguist.Translator.eval_stats.Linguist.Engine.rules_evaluated );
    ]

(* The update payload deliberately omits evaluation-mode statistics:
   with a worker pool, same-doc updates may run in any order, so which
   one finds cached state is nondeterministic — but the outputs are not
   (the differential contract), and only they are emitted, keeping
   [to_json ~timings:false] byte-identical across worker counts. *)
let update_payload ~outputs ~tree_size ~input_lines =
  Obj
    [
      ( "outputs",
        Obj
          (List.map
             (fun (name, v) -> (name, Str (Lg_support.Value.to_string v)))
             outputs) );
      ("tree_size", int tree_size);
      ("input_lines", int input_lines);
    ]

(* Resolve a translate/update tenant to its cached translator session:
   built-ins by name, grammar files by content digest (two jobs naming
   the same .ag text share one compilation). *)
let tenant_translator ~sessions = function
  | Jobfile.Language lang -> Session.language_session sessions lang
  | Jobfile.Grammar path ->
      Session.translator_session sessions ~file:path ~source:(read_file path)
        ()

let count_lines source =
  let n = String.length source in
  let lines = ref 0 in
  String.iter (fun c -> if c = '\n' then incr lines) source;
  if n > 0 && source.[n - 1] <> '\n' then incr lines;
  !lines

let run_job ~sessions ?incremental (j : Jobfile.job) =
  let t0 = Unix.gettimeofday () in
  let finish ~ok ~code ~error payload =
    {
      o_id = j.Jobfile.j_id;
      o_op = Jobfile.op_name j.Jobfile.j_op;
      o_file = j.Jobfile.j_file;
      o_ok = ok;
      o_exit = code;
      o_error = error;
      o_payload = payload;
      o_seconds = Unix.gettimeofday () -. t0;
    }
  in
  (* A typed store error names the APT file it caught — a path inside
     this job's private temp dir, random per run. Leaving it in the
     outcome would break the byte-identical guarantee of
     [to_json ~timings:false], so every token rooted in the job dir is
     scrubbed down to a stable placeholder. *)
  let scrub_dir ~dir msg =
    let dlen = String.length dir and n = String.length msg in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + dlen <= n && String.sub msg !i dlen = dir then begin
        Buffer.add_string buf "<job-tmp>";
        i := !i + dlen;
        while !i < n && msg.[!i] <> ' ' && msg.[!i] <> ':' do
          incr i
        done
      end
      else begin
        Buffer.add_char buf msg.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  match make_temp_dir () with
  | exception e ->
      finish ~ok:false ~code:1 ~error:(Some (Printexc.to_string e)) Null
  | dir -> (
  let failed ~code msg =
    finish ~ok:false ~code ~error:(Some (scrub_dir ~dir msg)) Null
  in
  match
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let source =
      (* inline source wins: a fabric-shipped job carries its input text
         and keeps j_file as a label only *)
      match j.Jobfile.j_source with
      | Some s -> s
      | None -> read_file j.Jobfile.j_file
    in
    let engine_options = engine_options_of j ~dir in
    match j.Jobfile.j_op with
    | Jobfile.Check -> (
        let options =
          {
            Linguist.Driver.default_options with
            apt_backend = engine_options.Linguist.Engine.backend;
            depth_budget = engine_options.Linguist.Engine.depth_budget;
            node_budget = engine_options.Linguist.Engine.node_budget;
          }
        in
        match
          Linguist.Driver.process ~options ~file:j.Jobfile.j_file source
        with
        | Ok artifact -> finish ~ok:true ~code:0 ~error:None (check_payload artifact)
        | Error diag ->
            failed ~code:1
              (Linguist.Listing.errors_only ~source ~file:j.Jobfile.j_file diag))
    | Jobfile.Analyze ->
        let session = Session.language_session sessions "linguist" in
        let translator =
          match session.Session.s_payload with
          | Session.Translator t -> t
          | Session.Artifact _ -> assert false
        in
        let a =
          Lg_languages.Linguist_ag.analyze ~engine_options ~translator source
        in
        finish ~ok:true ~code:0 ~error:None (analyze_payload a)
    | Jobfile.Translate tenant -> (
        let session = tenant_translator ~sessions tenant in
        let translator =
          match session.Session.s_payload with
          | Session.Translator t -> t
          | Session.Artifact _ -> assert false
        in
        match
          Linguist.Translator.translate ~engine_options translator
            ~file:j.Jobfile.j_file source
        with
        | Ok tr -> finish ~ok:true ~code:0 ~error:None (translate_payload tr)
        | Error diag ->
            failed ~code:1
              (Linguist.Listing.errors_only ~source ~file:j.Jobfile.j_file diag))
    | Jobfile.Update tenant -> (
        let session = tenant_translator ~sessions tenant in
        let translator =
          match session.Session.s_payload with
          | Session.Translator t -> t
          | Session.Artifact _ -> assert false
        in
        let diag = Lg_support.Diag.create () in
        match
          Linguist.Translator.tree_of_source translator ~file:j.Jobfile.j_file
            ~diag source
        with
        | None ->
            failed ~code:1
              (Linguist.Listing.errors_only ~source ~file:j.Jobfile.j_file diag)
        | Some tree ->
            let plan = Linguist.Translator.plan translator in
            let config inc =
              {
                Lg_incremental.Incr.default_config with
                threshold = inc.inc_threshold;
                spill =
                  (if inc.inc_spill then
                     Some engine_options.Linguist.Engine.backend
                   else None);
              }
            in
            let result =
              match incremental with
              | None ->
                  (* stateless: every update evaluates from scratch *)
                  fst
                    (Lg_incremental.Incr.update (config default_incremental)
                       ~plan ~engine_options ~tree)
              | Some inc ->
                  let doc =
                    Option.value j.Jobfile.j_doc ~default:j.Jobfile.j_file
                  in
                  let slot =
                    Session.doc_slot sessions ~digest:session.Session.s_digest
                      ~doc
                  in
                  Mutex.lock slot.Session.doc_lock;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock slot.Session.doc_lock)
                    (fun () ->
                      let result, next =
                        Lg_incremental.Incr.update ?state:slot.Session.doc_state
                          (config inc) ~plan ~engine_options ~tree
                      in
                      slot.Session.doc_state <- next;
                      result)
            in
            finish ~ok:true ~code:0 ~error:None
              (update_payload ~outputs:result.Lg_incremental.Incr.outputs
                 ~tree_size:result.Lg_incremental.Incr.tree_size
                 ~input_lines:(count_lines source)))
  with
  | outcome -> outcome
  | exception Lg_apt.Apt_error.Error e ->
      failed ~code:(Lg_apt.Apt_error.exit_code e) (Lg_apt.Apt_error.to_string e)
  | exception Server_error.Error e ->
      (* e.g. a quarantined tenant refused at session lookup *)
      failed ~code:(Server_error.exit_code e) (Server_error.to_string e)
  | exception Failure msg -> failed ~code:1 msg
  | exception Sys_error msg -> failed ~code:1 msg
  | exception e -> failed ~code:1 (Printexc.to_string e))

let default_workers () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

(* The session a job holds responsible when it takes a worker down: the
   digest its tenant would cache under, so strikes line up with what
   [find_or_build] will refuse once quarantined. [Check] compiles fresh
   every time — no session, no one to strike. *)
let culprit (j : Jobfile.job) =
  let of_tenant = function
    | Jobfile.Language lang ->
        Some (Session.digest ~kind:"language" ~source:lang, "language:" ^ lang)
    | Jobfile.Grammar path -> (
        match read_file path with
        | source ->
            Some
              ( Session.digest ~kind:"translator" ~source,
                "translator:" ^ Filename.basename path )
        | exception _ -> None)
  in
  match j.Jobfile.j_op with
  | Jobfile.Check -> None
  | Jobfile.Analyze ->
      Some
        ( Session.digest ~kind:"language" ~source:"linguist",
          "language:linguist" )
  | Jobfile.Translate t | Jobfile.Update t -> of_tenant t

(* admission control, ahead of everything else in the thunk (including
   chaos injection): a job naming a quarantined session is refused with
   the typed diagnostic before it can burn a worker *)
let quarantine_gate ~sessions (j : Jobfile.job) =
  match culprit j with
  | Some (digest, label) when Session.is_quarantined sessions ~digest ->
      Server_error.raise_
        (Server_error.Session_quarantined
           { digest; label; strikes = Session.strike_count sessions ~digest })
  | _ -> ()

(* runs in the worker, before the job proper: a [Crash_job] roll kills
   the worker through the supervision path, [Wedge_job] holds it until
   the watchdog's deadline (or just runs late without one) *)
let chaos_gate ?chaos (j : Jobfile.job) =
  match chaos with
  | None -> ()
  | Some c -> (
      match Chaos.on_job c ~id:j.Jobfile.j_id ~file:j.Jobfile.j_file with
      | None -> ()
      | Some Chaos.Delay_job -> Unix.sleepf (Chaos.delay_seconds c)
      | Some Chaos.Wedge_job -> Unix.sleepf (Chaos.wedge_seconds c)
      | Some Chaos.Crash_job -> raise (Pool.Crash "chaos: injected worker crash"))

let failure_outcome ?(metrics = Lg_support.Metrics.null) ~sessions
    (j : Jobfile.job) exn =
  let failed ~code msg =
    {
      o_id = j.Jobfile.j_id;
      o_op = Jobfile.op_name j.Jobfile.j_op;
      o_file = j.Jobfile.j_file;
      o_ok = false;
      o_exit = code;
      o_error = Some msg;
      o_payload = Null;
      o_seconds = 0.;
    }
  in
  match exn with
  | Server_error.Error e ->
      (match e with
      | Server_error.Worker_crashed _ | Server_error.Deadline_exceeded _ -> (
          match culprit j with
          | Some (digest, label) ->
              let n = Session.strike sessions ~digest ~label in
              if n = Session.quarantine_threshold sessions then
                Lg_support.Metrics.incr metrics "server.quarantined"
          | None -> ())
      | Server_error.Session_quarantined _ -> ());
      failed ~code:(Server_error.exit_code e) (Server_error.to_string e)
  | e -> failed ~code:1 (Printexc.to_string e)

(* run one job inside its own trace story, then splice that story into
   the run-wide trace; [absorb] is a no-op when the parent is disabled *)
let traced_job ~parent ~sessions ?incremental j =
  let jt =
    if Lg_support.Trace.enabled parent then Lg_support.Trace.create ()
    else Lg_support.Trace.null
  in
  let installed = Lg_support.Trace.ambient () in
  Lg_support.Trace.install jt;
  Fun.protect
    ~finally:(fun () ->
      Lg_support.Trace.install installed;
      Lg_support.Trace.absorb parent jt)
    (fun () ->
      Lg_support.Trace.span jt ~cat:"job" j.Jobfile.j_id (fun () ->
          run_job ~sessions ?incremental j))

let summarize ~workers ~wall outcomes =
  let n_ok = List.length (List.filter (fun o -> o.o_ok) outcomes) in
  {
    outcomes;
    n_ok;
    n_failed = List.length outcomes - n_ok;
    workers;
    wall_seconds = wall;
  }

let run ?workers ?sessions ?metrics ?tracer ?incremental ?chaos ?deadline jobs =
  let workers = match workers with Some w -> w | None -> default_workers () in
  let metrics =
    match metrics with Some m -> m | None -> Lg_support.Metrics.ambient ()
  in
  let sessions =
    match sessions with
    | Some c -> c
    | None -> Session.create_cache ~metrics ()
  in
  let parent =
    match tracer with Some t -> t | None -> Lg_support.Trace.ambient ()
  in
  (* jobfile deadline wins over the run default *)
  let job_deadline (j : Jobfile.job) =
    match j.Jobfile.j_deadline with Some _ as d -> d | None -> deadline
  in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    if workers <= 0 then
      (* No pool, but the same server.* series the pool would publish —
         a sequential run is comparable to a pooled one on the metrics
         axis, not only on the payload axis. Queue wait is identically
         zero: the calling domain "dequeues" each job the instant it is
         "submitted". *)
      List.map
        (fun j ->
          Lg_support.Metrics.incr metrics "server.jobs";
          Lg_support.Metrics.observe metrics
            ~buckets:Lg_support.Metrics.latency_buckets
            "server.queue_wait_seconds" 0.0;
          let started = Unix.gettimeofday () in
          let outcome =
            match
              quarantine_gate ~sessions j;
              chaos_gate ?chaos j;
              traced_job ~parent ~sessions ?incremental j
            with
            | o -> o
            | exception Pool.Crash msg ->
                Lg_support.Metrics.incr metrics "server.worker_crashes";
                failure_outcome ~metrics ~sessions j
                  (Server_error.Error
                     (Server_error.Worker_crashed
                        { job = j.Jobfile.j_id; detail = msg }))
            | exception Server_error.Error e ->
                failure_outcome ~metrics ~sessions j (Server_error.Error e)
          in
          let elapsed = Unix.gettimeofday () -. started in
          Lg_support.Metrics.observe metrics
            ~buckets:Lg_support.Metrics.latency_buckets
            "server.service_seconds" elapsed;
          Lg_support.Metrics.observe metrics "server.job_seconds" elapsed;
          outcome)
        jobs
    else begin
      let pool =
        Pool.create ~metrics ~workers
          ~queue_capacity:(max 1 (List.length jobs))
          ()
      in
      Fun.protect ~finally:(fun () -> Pool.drain pool) @@ fun () ->
      let handles =
        List.map
          (fun j ->
            match
              Pool.submit ~label:j.Jobfile.j_id ~lane:Pool.Bulk
                ?deadline:(job_deadline j) pool
                (fun () ->
                  quarantine_gate ~sessions j;
                  chaos_gate ?chaos j;
                  traced_job ~parent ~sessions ?incremental j)
            with
            | Ok h -> h
            | Error _ ->
                (* capacity = job count: unreachable, but keep it total *)
                assert false)
          jobs
      in
      List.map2
        (fun j h ->
          match Pool.await h with
          | Ok outcome -> outcome
          | Error e -> failure_outcome ~metrics ~sessions j e)
        jobs handles
    end
  in
  summarize ~workers:(max workers 0) ~wall:(Unix.gettimeofday () -. t0) outcomes

let run_sequential ?sessions ?metrics ?tracer ?incremental jobs =
  run ~workers:0 ?sessions ?metrics ?tracer ?incremental jobs

let outcome_to_json ~timings o =
  Obj
    ([
       ("id", Str o.o_id);
       ("op", Str o.o_op);
       ("file", Str o.o_file);
       ("ok", Bool o.o_ok);
       ("exit", int o.o_exit);
       ( "error",
         match o.o_error with Some msg -> Str msg | None -> Null );
       ("payload", o.o_payload);
     ]
    @ if timings then [ ("seconds", Num o.o_seconds) ] else [])

let to_json ?(timings = false) s =
  Obj
    ([
       ("linguist_batch", int 1);
       ("jobs", Arr (List.map (outcome_to_json ~timings) s.outcomes));
       ("n_ok", int s.n_ok);
       ("n_failed", int s.n_failed);
     ]
    @
    if timings then
      [
        ("workers", int s.workers);
        ("wall_seconds", Num s.wall_seconds);
        ( "jobs_per_second",
          Num
            (if s.wall_seconds > 0. then
               float_of_int (List.length s.outcomes) /. s.wall_seconds
             else 0.) );
      ]
    else [])
