(* The APT file façade: node codec + record accounting over a pluggable
   byte-record store ([Apt_store]). The legacy [Mem]/[Disk] backends keep
   their seed byte format and accounting; everything else comes from the
   store registry. *)

type backend =
  | Mem
  | Disk of { dir : string }
  | Store of { name : string; config : Apt_store.config }

type file = Apt_store.file

type writer = {
  w_stats : Io_stats.t option;
  buf : Buffer.t;  (** per-record scratch *)
  inner_w : Apt_store.writer;
}

type reader = { r_stats : Io_stats.t option; inner_r : Apt_store.reader }

let store_of_backend = function
  | Mem -> Store_legacy.mem ()
  | Disk { dir } -> Store_legacy.disk { Apt_store.default_config with dir = Some dir }
  | Store { name; config } -> Store_registry.find ~config name

(* Every name resolves through the registry — including "mem" and
   "disk" — so the whole config (durable, legacy_format, faults, ...)
   reaches the store. The bare [Mem]/[Disk] variants remain for callers
   that construct backends programmatically with default behavior. *)
let backend_of_store_name ?(config = Apt_store.default_config) name =
  if not (List.mem name (Store_registry.names ())) then
    ignore (Store_registry.find ~config name) (* raises with the known names *);
  Store { name; config }

let backend_name = function
  | Mem -> "mem"
  | Disk _ -> "disk"
  | Store { name; _ } -> name

let writer ?stats backend =
  (match stats with
  | Some s -> Io_stats.bump s.Io_stats.files_created 1
  | None -> ());
  let store = store_of_backend backend in
  { w_stats = stats; buf = Buffer.create 256; inner_w = store.Apt_store.start stats }

let write w node =
  Buffer.clear w.buf;
  Node.encode w.buf node;
  let payload = Buffer.contents w.buf in
  w.inner_w.Apt_store.put payload;
  (* record-size distribution for the metrics registry (§IV's "how big
     are the APT records" accounting); one field check when disabled *)
  let m = Lg_support.Metrics.ambient () in
  if Lg_support.Metrics.enabled m then
    Lg_support.Metrics.observe m "apt.record_bytes"
      (float_of_int (String.length payload));
  match w.w_stats with
  | Some s -> Io_stats.bump s.Io_stats.records_written 1
  | None -> ()

let close_writer w = w.inner_w.Apt_store.close ()

let size_bytes (f : file) = f.Apt_store.f_size
let record_count (f : file) = f.Apt_store.f_records
let store_name (f : file) = f.Apt_store.f_store
let backing_path (f : file) = f.Apt_store.f_path

let read_forward ?stats (f : file) =
  { r_stats = stats; inner_r = f.Apt_store.f_read stats `Forward }

let read_backward ?stats (f : file) =
  { r_stats = stats; inner_r = f.Apt_store.f_read stats `Backward }

let read_next r =
  match r.inner_r.Apt_store.next () with
  | None -> None
  | Some payload ->
      (match r.r_stats with
      | Some s -> Io_stats.bump s.Io_stats.records_read 1
      | None -> ());
      Some (Node.decode payload)

let close_reader r = r.inner_r.Apt_store.close_reader ()

let to_list ?stats f =
  let r = read_forward ?stats f in
  let rec go acc =
    match read_next r with Some n -> go (n :: acc) | None -> List.rev acc
  in
  let result = go [] in
  close_reader r;
  result

let of_list ?stats backend nodes =
  let w = writer ?stats backend in
  List.iter (write w) nodes;
  close_writer w

let dispose (f : file) = f.Apt_store.f_dispose ()
