(* Counters are atomics: a tally may be shared by store layers running
   on several domains at once (the batch-evaluation pool), and a plain
   mutable-int increment would silently lose counts under that race. An
   uncontended atomic fetch-and-add costs a few nanoseconds — below the
   noise of the record encoding around every tally — so the
   single-threaded path is not measurably slower. *)

type t = {
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
  records_read : int Atomic.t;
  records_written : int Atomic.t;
  files_created : int Atomic.t;
  (* page-level counters (paged/prefetching stores) *)
  pages_read : int Atomic.t;
  pages_written : int Atomic.t;
  pool_hits : int Atomic.t;
  pool_misses : int Atomic.t;
  prefetch_hits : int Atomic.t;
  seeks : int Atomic.t;
  (* resilience counters (retry/quarantine policy in Store_pager) *)
  retries : int Atomic.t;
  pages_quarantined : int Atomic.t;
  (* compression accounting (zip store layers) *)
  raw_bytes_read : int Atomic.t;
  raw_bytes_written : int Atomic.t;
}

let bump c n = ignore (Atomic.fetch_and_add c n : int)
let get = Atomic.get

(* The single field table: every counter appears here exactly once, and
   [fields]/[set_field]/[add]/[reset]/[to_json] are all derived from it,
   so a newly added counter cannot be silently dropped from any of them.
   (The property tests additionally pin the table's length against the
   record's runtime size.) *)
let field_specs : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("bytes_read", (fun t -> get t.bytes_read), fun t v -> Atomic.set t.bytes_read v);
    ( "bytes_written",
      (fun t -> get t.bytes_written),
      fun t v -> Atomic.set t.bytes_written v );
    ( "records_read",
      (fun t -> get t.records_read),
      fun t v -> Atomic.set t.records_read v );
    ( "records_written",
      (fun t -> get t.records_written),
      fun t v -> Atomic.set t.records_written v );
    ( "files_created",
      (fun t -> get t.files_created),
      fun t v -> Atomic.set t.files_created v );
    ("pages_read", (fun t -> get t.pages_read), fun t v -> Atomic.set t.pages_read v);
    ( "pages_written",
      (fun t -> get t.pages_written),
      fun t v -> Atomic.set t.pages_written v );
    ("pool_hits", (fun t -> get t.pool_hits), fun t v -> Atomic.set t.pool_hits v);
    ( "pool_misses",
      (fun t -> get t.pool_misses),
      fun t v -> Atomic.set t.pool_misses v );
    ( "prefetch_hits",
      (fun t -> get t.prefetch_hits),
      fun t v -> Atomic.set t.prefetch_hits v );
    ("seeks", (fun t -> get t.seeks), fun t v -> Atomic.set t.seeks v);
    ("retries", (fun t -> get t.retries), fun t v -> Atomic.set t.retries v);
    ( "pages_quarantined",
      (fun t -> get t.pages_quarantined),
      fun t v -> Atomic.set t.pages_quarantined v );
    ( "raw_bytes_read",
      (fun t -> get t.raw_bytes_read),
      fun t v -> Atomic.set t.raw_bytes_read v );
    ( "raw_bytes_written",
      (fun t -> get t.raw_bytes_written),
      fun t v -> Atomic.set t.raw_bytes_written v );
  ]

let create () =
  {
    bytes_read = Atomic.make 0;
    bytes_written = Atomic.make 0;
    records_read = Atomic.make 0;
    records_written = Atomic.make 0;
    files_created = Atomic.make 0;
    pages_read = Atomic.make 0;
    pages_written = Atomic.make 0;
    pool_hits = Atomic.make 0;
    pool_misses = Atomic.make 0;
    prefetch_hits = Atomic.make 0;
    seeks = Atomic.make 0;
    retries = Atomic.make 0;
    pages_quarantined = Atomic.make 0;
    raw_bytes_read = Atomic.make 0;
    raw_bytes_written = Atomic.make 0;
  }

let fields t = List.map (fun (name, get, _) -> (name, get t)) field_specs

let set_field t name v =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name) field_specs
  with
  | Some (_, _, set) -> set t v
  | None -> invalid_arg (Printf.sprintf "Io_stats.set_field: unknown counter %S" name)

let reset t = List.iter (fun (_, _, set) -> set t 0) field_specs

let add ~into t =
  List.iter (fun (_, get, set) -> set into (get into + get t)) field_specs

let total_bytes t = get t.bytes_read + get t.bytes_written
let total_pages t = get t.pages_read + get t.pages_written

let compression_ratio t =
  let raw_w = get t.raw_bytes_written and w = get t.bytes_written in
  if raw_w > 0 && w > 0 then Some (float_of_int raw_w /. float_of_int w)
  else None

let modeled_seconds t ~bytes_per_second =
  float_of_int (total_bytes t) /. bytes_per_second

let modeled_seconds_seek t ~bytes_per_second ~seek_seconds =
  modeled_seconds t ~bytes_per_second
  +. (float_of_int (get t.seeks) *. seek_seconds)

let pp ppf t =
  Format.fprintf ppf
    "read %d B / %d rec; wrote %d B / %d rec; %d files" (get t.bytes_read)
    (get t.records_read) (get t.bytes_written) (get t.records_written)
    (get t.files_created);
  if total_pages t > 0 then
    Format.fprintf ppf "; pages %dr/%dw; pool %d hit/%d miss; %d prefetched"
      (get t.pages_read) (get t.pages_written) (get t.pool_hits)
      (get t.pool_misses) (get t.prefetch_hits);
  if get t.seeks > 0 then Format.fprintf ppf "; %d seeks" (get t.seeks);
  if get t.retries > 0 || get t.pages_quarantined > 0 then
    Format.fprintf ppf "; %d retries/%d quarantined" (get t.retries)
      (get t.pages_quarantined);
  match compression_ratio t with
  | Some r ->
      Format.fprintf ppf "; %d raw B (%.2fx compression)"
        (get t.raw_bytes_written) r
  | None -> ()

let to_json_value t =
  Lg_support.Json_out.Obj
    (List.map (fun (name, v) -> (name, Lg_support.Json_out.int v)) (fields t)
    @ [
        ( "compression_ratio",
          match compression_ratio t with
          | Some r -> Lg_support.Json_out.Num r
          | None -> Lg_support.Json_out.Null );
      ])

let to_json t = Lg_support.Json_out.to_string (to_json_value t)

(* Accumulate this tally into a metrics registry, one counter per field
   of the table — the registry's apt.* rows are a view over the same
   field table that add/reset/fields/to_json are derived from, so a new
   counter shows up in manifests without further wiring. *)
let publish ?(prefix = "apt.") t m =
  List.iter
    (fun (name, v) ->
      if v <> 0 then Lg_support.Metrics.incr m ~by:v (prefix ^ name))
    (fields t)
