type t = {
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable records_read : int;
  mutable records_written : int;
  mutable files_created : int;
  (* page-level counters (paged/prefetching stores) *)
  mutable pages_read : int;
  mutable pages_written : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable prefetch_hits : int;
  mutable seeks : int;
  (* compression accounting (zip store layers) *)
  mutable raw_bytes_read : int;
  mutable raw_bytes_written : int;
}

let create () =
  {
    bytes_read = 0;
    bytes_written = 0;
    records_read = 0;
    records_written = 0;
    files_created = 0;
    pages_read = 0;
    pages_written = 0;
    pool_hits = 0;
    pool_misses = 0;
    prefetch_hits = 0;
    seeks = 0;
    raw_bytes_read = 0;
    raw_bytes_written = 0;
  }

let reset t =
  t.bytes_read <- 0;
  t.bytes_written <- 0;
  t.records_read <- 0;
  t.records_written <- 0;
  t.files_created <- 0;
  t.pages_read <- 0;
  t.pages_written <- 0;
  t.pool_hits <- 0;
  t.pool_misses <- 0;
  t.prefetch_hits <- 0;
  t.seeks <- 0;
  t.raw_bytes_read <- 0;
  t.raw_bytes_written <- 0

let add ~into t =
  into.bytes_read <- into.bytes_read + t.bytes_read;
  into.bytes_written <- into.bytes_written + t.bytes_written;
  into.records_read <- into.records_read + t.records_read;
  into.records_written <- into.records_written + t.records_written;
  into.files_created <- into.files_created + t.files_created;
  into.pages_read <- into.pages_read + t.pages_read;
  into.pages_written <- into.pages_written + t.pages_written;
  into.pool_hits <- into.pool_hits + t.pool_hits;
  into.pool_misses <- into.pool_misses + t.pool_misses;
  into.prefetch_hits <- into.prefetch_hits + t.prefetch_hits;
  into.seeks <- into.seeks + t.seeks;
  into.raw_bytes_read <- into.raw_bytes_read + t.raw_bytes_read;
  into.raw_bytes_written <- into.raw_bytes_written + t.raw_bytes_written

let total_bytes t = t.bytes_read + t.bytes_written
let total_pages t = t.pages_read + t.pages_written

let compression_ratio t =
  if t.raw_bytes_written > 0 && t.bytes_written > 0 then
    Some (float_of_int t.raw_bytes_written /. float_of_int t.bytes_written)
  else None

let modeled_seconds t ~bytes_per_second =
  float_of_int (total_bytes t) /. bytes_per_second

let modeled_seconds_seek t ~bytes_per_second ~seek_seconds =
  modeled_seconds t ~bytes_per_second +. (float_of_int t.seeks *. seek_seconds)

let pp ppf t =
  Format.fprintf ppf
    "read %d B / %d rec; wrote %d B / %d rec; %d files" t.bytes_read
    t.records_read t.bytes_written t.records_written t.files_created;
  if total_pages t > 0 then
    Format.fprintf ppf "; pages %dr/%dw; pool %d hit/%d miss; %d prefetched"
      t.pages_read t.pages_written t.pool_hits t.pool_misses t.prefetch_hits;
  if t.seeks > 0 then Format.fprintf ppf "; %d seeks" t.seeks;
  match compression_ratio t with
  | Some r -> Format.fprintf ppf "; %d raw B (%.2fx compression)" t.raw_bytes_written r
  | None -> ()

let to_json t =
  let fields =
    [
      ("bytes_read", string_of_int t.bytes_read);
      ("bytes_written", string_of_int t.bytes_written);
      ("records_read", string_of_int t.records_read);
      ("records_written", string_of_int t.records_written);
      ("files_created", string_of_int t.files_created);
      ("pages_read", string_of_int t.pages_read);
      ("pages_written", string_of_int t.pages_written);
      ("pool_hits", string_of_int t.pool_hits);
      ("pool_misses", string_of_int t.pool_misses);
      ("prefetch_hits", string_of_int t.prefetch_hits);
      ("seeks", string_of_int t.seeks);
      ("raw_bytes_read", string_of_int t.raw_bytes_read);
      ("raw_bytes_written", string_of_int t.raw_bytes_written);
      ( "compression_ratio",
        match compression_ratio t with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "null" );
    ]
  in
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}"
