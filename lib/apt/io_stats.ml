type t = {
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable records_read : int;
  mutable records_written : int;
  mutable files_created : int;
  (* page-level counters (paged/prefetching stores) *)
  mutable pages_read : int;
  mutable pages_written : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable prefetch_hits : int;
  mutable seeks : int;
  (* resilience counters (retry/quarantine policy in Store_pager) *)
  mutable retries : int;
  mutable pages_quarantined : int;
  (* compression accounting (zip store layers) *)
  mutable raw_bytes_read : int;
  mutable raw_bytes_written : int;
}

(* The single field table: every counter appears here exactly once, and
   [fields]/[set_field]/[add]/[reset]/[to_json] are all derived from it,
   so a newly added counter cannot be silently dropped from any of them.
   (The property tests additionally pin the table's length against the
   record's runtime size.) *)
let field_specs : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("bytes_read", (fun t -> t.bytes_read), fun t v -> t.bytes_read <- v);
    ( "bytes_written",
      (fun t -> t.bytes_written),
      fun t v -> t.bytes_written <- v );
    ("records_read", (fun t -> t.records_read), fun t v -> t.records_read <- v);
    ( "records_written",
      (fun t -> t.records_written),
      fun t v -> t.records_written <- v );
    ( "files_created",
      (fun t -> t.files_created),
      fun t v -> t.files_created <- v );
    ("pages_read", (fun t -> t.pages_read), fun t v -> t.pages_read <- v);
    ( "pages_written",
      (fun t -> t.pages_written),
      fun t v -> t.pages_written <- v );
    ("pool_hits", (fun t -> t.pool_hits), fun t v -> t.pool_hits <- v);
    ("pool_misses", (fun t -> t.pool_misses), fun t v -> t.pool_misses <- v);
    ( "prefetch_hits",
      (fun t -> t.prefetch_hits),
      fun t v -> t.prefetch_hits <- v );
    ("seeks", (fun t -> t.seeks), fun t v -> t.seeks <- v);
    ("retries", (fun t -> t.retries), fun t v -> t.retries <- v);
    ( "pages_quarantined",
      (fun t -> t.pages_quarantined),
      fun t v -> t.pages_quarantined <- v );
    ( "raw_bytes_read",
      (fun t -> t.raw_bytes_read),
      fun t v -> t.raw_bytes_read <- v );
    ( "raw_bytes_written",
      (fun t -> t.raw_bytes_written),
      fun t v -> t.raw_bytes_written <- v );
  ]

let create () =
  {
    bytes_read = 0;
    bytes_written = 0;
    records_read = 0;
    records_written = 0;
    files_created = 0;
    pages_read = 0;
    pages_written = 0;
    pool_hits = 0;
    pool_misses = 0;
    prefetch_hits = 0;
    seeks = 0;
    retries = 0;
    pages_quarantined = 0;
    raw_bytes_read = 0;
    raw_bytes_written = 0;
  }

let fields t = List.map (fun (name, get, _) -> (name, get t)) field_specs

let set_field t name v =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name) field_specs
  with
  | Some (_, _, set) -> set t v
  | None -> invalid_arg (Printf.sprintf "Io_stats.set_field: unknown counter %S" name)

let reset t = List.iter (fun (_, _, set) -> set t 0) field_specs

let add ~into t =
  List.iter (fun (_, get, set) -> set into (get into + get t)) field_specs

let total_bytes t = t.bytes_read + t.bytes_written
let total_pages t = t.pages_read + t.pages_written

let compression_ratio t =
  if t.raw_bytes_written > 0 && t.bytes_written > 0 then
    Some (float_of_int t.raw_bytes_written /. float_of_int t.bytes_written)
  else None

let modeled_seconds t ~bytes_per_second =
  float_of_int (total_bytes t) /. bytes_per_second

let modeled_seconds_seek t ~bytes_per_second ~seek_seconds =
  modeled_seconds t ~bytes_per_second +. (float_of_int t.seeks *. seek_seconds)

let pp ppf t =
  Format.fprintf ppf
    "read %d B / %d rec; wrote %d B / %d rec; %d files" t.bytes_read
    t.records_read t.bytes_written t.records_written t.files_created;
  if total_pages t > 0 then
    Format.fprintf ppf "; pages %dr/%dw; pool %d hit/%d miss; %d prefetched"
      t.pages_read t.pages_written t.pool_hits t.pool_misses t.prefetch_hits;
  if t.seeks > 0 then Format.fprintf ppf "; %d seeks" t.seeks;
  if t.retries > 0 || t.pages_quarantined > 0 then
    Format.fprintf ppf "; %d retries/%d quarantined" t.retries
      t.pages_quarantined;
  match compression_ratio t with
  | Some r -> Format.fprintf ppf "; %d raw B (%.2fx compression)" t.raw_bytes_written r
  | None -> ()

let to_json_value t =
  Lg_support.Json_out.Obj
    (List.map (fun (name, v) -> (name, Lg_support.Json_out.int v)) (fields t)
    @ [
        ( "compression_ratio",
          match compression_ratio t with
          | Some r -> Lg_support.Json_out.Num r
          | None -> Lg_support.Json_out.Null );
      ])

let to_json t = Lg_support.Json_out.to_string (to_json_value t)

(* Accumulate this tally into a metrics registry, one counter per field
   of the table — the registry's apt.* rows are a view over the same
   field table that add/reset/fields/to_json are derived from, so a new
   counter shows up in manifests without further wiring. *)
let publish ?(prefix = "apt.") t m =
  List.iter
    (fun (name, v) ->
      if v <> 0 then Lg_support.Metrics.incr m ~by:v (prefix ^ name))
    (fields t)
