(** Typed errors for the APT storage and evaluation stack.

    Integrity failures detected by the store layer (checksummed framing,
    {!Salvage}) and resource exhaustion in the evaluator surface as
    values of {!t} carried by the {!Error} exception — never as bare
    [Failure] strings — so callers can dispatch on the failure class,
    render it through {!Lg_support.Diag}, and exit with a stable code. *)

type t =
  | Corrupt_record of { path : string option; offset : int; detail : string }
      (** A record frame failed validation: checksum mismatch,
          header/trailer disagreement, or an undecodable payload.
          [offset] is the byte offset of the failing probe. *)
  | Truncated_file of { path : string option; offset : int; detail : string }
      (** The medium ended before the record did (torn write, short
          file). *)
  | Version_mismatch of { path : string option; found : string }
      (** The file carries an APT signature of a version this build does
          not read. *)
  | Exhausted_retries of { path : string option; attempts : int; detail : string }
      (** A transient I/O fault persisted through the bounded
          retry-with-backoff policy ({!Store_pager}); the affected pages
          are quarantined. *)
  | Resource_limit of { what : string; limit : int; detail : string }
      (** An evaluator budget (tree depth, node count) was exceeded —
          reported instead of a stack overflow. *)

exception Error of t

exception Transient of string
(** A retryable I/O condition (injected EIO, short read) raised below
    the retry layer and absorbed by it; promoted to [Exhausted_retries]
    when the retry budget runs out. Never escapes the store layer. *)

val raise_ : t -> 'a
val transient : string -> 'a

val exit_code : t -> int
(** Stable process exit code for the CLI, pinned by [test_cli.ml]:
    corrupt record 40, truncated file 41, version mismatch 42, exhausted
    retries 43, resource limit 44. Never renumbered. *)

val to_string : t -> string
val path_of : t -> string option

val to_diag : t -> Lg_support.Diag.t
(** Render as a diagnostic; the span carries the APT file path when the
    error names one. *)

val add_to_diag : Lg_support.Diag.collector -> t -> unit
