(** Intermediate APT files: sequential node streams readable in both
    directions.

    This is Schulz's disk-resident APT strategy as adopted by LINGUIST-86.
    Each pass reads nodes in prefix order from one intermediate file and
    writes them in postfix order to another; because every record is framed
    by its length on {e both} sides, "the output file of a left-to-right
    pass read backwards" is exactly "the input file for a right-to-left
    pass" — no in-memory reversal ever happens.

    This module is a façade: it owns the {!Node} codec and the
    record-level accounting, and delegates the on-medium layout to a
    pluggable store ({!Apt_store}, resolved through {!Store_registry}).
    The legacy backends share the seed format byte for byte: [Disk] uses
    unbuffered real temporary files (the paper's floppy/rigid disk),
    [Mem] an in-memory buffer (the "virtual memory" variant the paper's
    conclusions ask about). [Store] selects any registered store —
    [paged], [prefetch], [zip], [paged+zip], or an extension. *)

type backend =
  | Mem
  | Disk of { dir : string }  (** temp files created inside [dir] *)
  | Store of { name : string; config : Apt_store.config }
      (** a store from {!Store_registry}, e.g. ["paged"] *)

type file
type writer
type reader

val backend_of_store_name : ?config:Apt_store.config -> string -> backend
(** Map a registry name (["mem"], ["disk"], ["paged"], ["paged+zip"], …)
    to a backend; the CLI's [--apt-store] parser.
    @raise Failure on an unregistered name, listing the known stores. *)

val backend_name : backend -> string

val writer : ?stats:Io_stats.t -> backend -> writer
val write : writer -> Node.t -> unit
val close_writer : writer -> file

val read_forward : ?stats:Io_stats.t -> file -> reader
val read_backward : ?stats:Io_stats.t -> file -> reader

val read_next : reader -> Node.t option
(** [None] at end of stream. @raise Failure on a corrupt file. *)

val close_reader : reader -> unit

val to_list : ?stats:Io_stats.t -> file -> Node.t list
(** Whole contents in forward order; convenience for tests. *)

val of_list : ?stats:Io_stats.t -> backend -> Node.t list -> file

val size_bytes : file -> int
val record_count : file -> int

val store_name : file -> string
(** Name of the store that wrote the file. *)

val backing_path : file -> string option
(** The backing temp file, when the store has one; for tests/tools. *)

val dispose : file -> unit
(** Delete the backing temp file (no-op for [Mem]). *)
