open Lg_support

type t = { prod : int; sym : int; attrs : Value.t array }

let leaf_prod = -1
let leaf ~sym ~attrs = { prod = leaf_prod; sym; attrs }
let interior ~prod ~sym ~attrs =
  if prod < 0 then invalid_arg "Node.interior: negative production";
  { prod; sym; attrs }

let is_leaf t = t.prod = leaf_prod

let equal a b =
  a.prod = b.prod && a.sym = b.sym
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 Value.equal a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>{%s %d; sym %d;%a}@]"
    (if is_leaf t then "leaf" else "prod")
    t.prod t.sym
    (fun ppf attrs ->
      Array.iteri (fun i v -> Format.fprintf ppf "@ %d=%a" i Value.pp v) attrs)
    t.attrs

(* Payload layout: varint (prod+1), varint sym, varint nattrs, values. *)
let encode buf t =
  let add_varint n =
    let rec go u =
      if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
        go (u lsr 7)
      end
    in
    if n < 0 then invalid_arg "Node.encode: negative field";
    go n
  in
  add_varint (t.prod + 1);
  add_varint t.sym;
  add_varint (Array.length t.attrs);
  Array.iter (Value.encode buf) t.attrs

let corrupt offset detail =
  Apt_error.raise_ (Apt_error.Corrupt_record { path = None; offset; detail })

let read_varint s pos =
  let rec go pos shift acc =
    if pos >= String.length s then
      corrupt pos "truncated node payload (varint runs off the record)";
    let byte = Char.code s.[pos] in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let decode s =
  let prod1, pos = read_varint s 0 in
  let sym, pos = read_varint s pos in
  let nattrs, pos = read_varint s pos in
  let pos = ref pos in
  let attrs =
    Array.init nattrs (fun _ ->
        (* Value.decode predates the typed channel and still reports
           through Failure; promote so callers see one error type *)
        let v, next =
          try Value.decode s !pos with Failure msg -> corrupt !pos msg
        in
        pos := next;
        v)
  in
  if !pos <> String.length s then
    corrupt !pos "node payload has trailing bytes";
  { prod = prod1 - 1; sym; attrs }

let encoded_size t =
  let buf = Buffer.create 64 in
  encode buf t;
  Buffer.length buf
