(* Offline integrity scan and recovery for APT files — the engine behind
   the CLI's [apt-fsck] subcommand.

   [scan] walks a file record by record through the same
   [Apt_store.Record_codec] the stores read with, so it detects exactly
   what a store would: checksum mismatches, header/trailer disagreement,
   torn frames, unreadable signatures. The walk stops at the first
   integrity failure; everything before it is the longest valid prefix,
   which [recover] rewrites — reframed and freshly checksummed — to a new
   file. *)

open Apt_store

type record_info = { r_offset : int; r_len : int  (** payload bytes *) }

type report = {
  sv_path : string;
  sv_size : int;
  sv_format : format;
  sv_records : record_info list;  (** valid records, in file order *)
  sv_issue : Apt_error.t option;  (** first integrity failure, if any *)
  sv_valid_bytes : int;  (** longest valid prefix of the file *)
}

let is_clean r = r.sv_issue = None

let read_file path =
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  let data = really_input_string ic size in
  close_in ic;
  data

let source_of_string path data =
  {
    Record_codec.src_path = path;
    src_size = String.length data;
    src_read =
      (fun ~pos ~len ~want:_ ->
        if pos < 0 || pos + len > String.length data then
          Apt_error.raise_
            (Apt_error.Truncated_file
               { path; offset = pos; detail = "read past end of file" })
        else String.sub data pos len);
  }

(* Registry view of a scan: how many files were walked, how much of them
   was intact, how many needed recovery. *)
let publish_report r =
  let m = Lg_support.Metrics.ambient () in
  if Lg_support.Metrics.enabled m then begin
    Lg_support.Metrics.incr m "salvage.scans";
    Lg_support.Metrics.incr m "salvage.records_valid"
      ~by:(List.length r.sv_records);
    Lg_support.Metrics.incr m "salvage.bytes_valid" ~by:r.sv_valid_bytes;
    if not (is_clean r) then Lg_support.Metrics.incr m "salvage.dirty_files"
  end;
  r

let scan path =
  let data = read_file path in
  let size = String.length data in
  let src = source_of_string (Some path) data in
  match Record_codec.sniff src with
  | exception Apt_error.Error e ->
      (* unreadable signature: nothing before the first record is valid *)
      publish_report
        {
          sv_path = path;
          sv_size = size;
          sv_format = Framed_v1;
          sv_records = [];
          sv_issue = Some e;
          sv_valid_bytes = 0;
        }
  | fmt ->
      let records = ref [] in
      let pos = ref (Record_codec.data_start fmt) in
      let issue = ref None in
      (try
         let continue = ref true in
         while !continue do
           match Record_codec.next_forward fmt src ~pos:!pos with
           | None -> continue := false
           | Some (payload, next) ->
               records :=
                 { r_offset = !pos; r_len = String.length payload } :: !records;
               pos := next
         done
       with Apt_error.Error e -> issue := Some e);
      publish_report
        {
          sv_path = path;
          sv_size = size;
          sv_format = fmt;
          sv_records = List.rev !records;
          sv_issue = !issue;
          sv_valid_bytes = !pos;
        }

(* Rewrite the longest valid prefix to [out], reframed under [format]
   (fresh checksums — recovery also migrates legacy files). Returns the
   number of records recovered. *)
let recover ?(format = Framed_v1) report ~out =
  let data = read_file report.sv_path in
  let src = source_of_string (Some report.sv_path) data in
  let och = Atomic_out.create out in
  let oc = Atomic_out.channel och in
  output_string oc (Record_codec.start_marker format);
  let n =
    List.fold_left
      (fun n { r_offset; r_len = _ } ->
        match Record_codec.next_forward report.sv_format src ~pos:r_offset with
        | Some (payload, _) ->
            let header, trailer = Record_codec.frame format payload in
            output_string oc header;
            output_string oc payload;
            output_string oc trailer;
            n + 1
        | None -> n)
      0 report.sv_records
  in
  Atomic_out.commit och;
  let m = Lg_support.Metrics.ambient () in
  if Lg_support.Metrics.enabled m then
    Lg_support.Metrics.incr m "salvage.records_recovered" ~by:n;
  n

let format_name = function Framed_v1 -> "framed-v1" | Legacy -> "legacy"

let pp_report ppf r =
  Format.fprintf ppf "%s: %d bytes, %s format@." r.sv_path r.sv_size
    (format_name r.sv_format);
  List.iter
    (fun { r_offset; r_len } ->
      Format.fprintf ppf "  ok      %8d  payload %d bytes@." r_offset r_len)
    r.sv_records;
  (match r.sv_issue with
  | Some e -> Format.fprintf ppf "  BAD     %s@." (Apt_error.to_string e)
  | None -> ());
  Format.fprintf ppf "%d valid records, %d of %d bytes valid%s@."
    (List.length r.sv_records) r.sv_valid_bytes r.sv_size
    (if is_clean r then "; file is clean" else "")
