(* Deterministic fault injection for the resilience test matrix.

   [layer] wraps any backing-file store and, at writer close, damages
   the medium the way real storage fails: torn writes truncate the file
   mid-stream, bit flips corrupt single bits in place. Read-side faults
   (transient EIO, short reads) are injected lower, inside
   [Store_pager.transfer], where the retry policy can absorb them — a
   bit flip injected above the checksum layer would be invisible to it,
   which is exactly the false confidence this module exists to avoid.

   Everything is driven by [Apt_store.fault_spec] (--apt-faults
   seed:rate:kinds): one RNG seeded with [f_seed] rolls once per written
   record, so a campaign is reproducible byte-for-byte. *)

open Apt_store

let kind_of_string = function
  | "transient" -> Ok Transient_io
  | "short" -> Ok Short_read
  | "flip" -> Ok Bit_flip
  | "torn" -> Ok Torn_write
  | s -> Error s

let kind_to_string = function
  | Transient_io -> "transient"
  | Short_read -> "short"
  | Bit_flip -> "flip"
  | Torn_write -> "torn"

let all_kinds = [ Transient_io; Short_read; Bit_flip; Torn_write ]

(* "seed:rate:kinds" with kinds a comma list of transient|short|flip|torn
   or "all", e.g. "42:0.01:transient,flip". *)
let parse_spec s =
  match String.split_on_char ':' s with
  | [ seed; rate; kinds ] -> (
      match
        (int_of_string_opt seed, float_of_string_opt rate)
      with
      | Some f_seed, Some f_rate when f_rate >= 0.0 && f_rate <= 1.0 -> (
          let parts =
            List.filter
              (fun p -> p <> "")
              (String.split_on_char ',' (String.lowercase_ascii kinds))
          in
          if parts = [] then Error "no fault kinds given"
          else if List.mem "all" parts then Ok { f_seed; f_rate; f_kinds = all_kinds }
          else
            let rec go acc = function
              | [] -> Ok { f_seed; f_rate; f_kinds = List.rev acc }
              | p :: rest -> (
                  match kind_of_string p with
                  | Ok k -> go (k :: acc) rest
                  | Error bad ->
                      Error
                        (Printf.sprintf
                           "unknown fault kind %S (expected \
                            transient|short|flip|torn|all)" bad))
            in
            go [] parts)
      | _ -> Error "expected SEED:RATE:KINDS with integer seed and rate in [0,1]")
  | _ -> Error "expected SEED:RATE:KINDS, e.g. 42:0.01:transient,flip"

let spec_to_string { f_seed; f_rate; f_kinds } =
  Printf.sprintf "%d:%g:%s" f_seed f_rate
    (String.concat "," (List.map kind_to_string f_kinds))

(* ---- write-side medium damage ---- *)

type action = Flip of int (* record index *) | Tear of int

let write_kinds spec =
  List.filter (function Bit_flip | Torn_write -> true | _ -> false) spec.f_kinds

(* One roll per written record: each record is an opportunity for the
   medium to fail underneath it. *)
let plan_damage spec rng ~records =
  let kinds = write_kinds spec in
  let actions = ref [] in
  for i = 0 to records - 1 do
    if Random.State.float rng 1.0 < spec.f_rate then
      match List.nth kinds (Random.State.int rng (List.length kinds)) with
      | Bit_flip -> actions := Flip i :: !actions
      | Torn_write -> actions := Tear i :: !actions
      | _ -> ()
  done;
  List.rev !actions

(* Damage the closed backing file in place. Flips touch one random bit
   past the signature; tears cut the file at a random offset past the
   signature. Returns the file's new size. *)
let apply_damage rng path actions =
  let ic = open_in_bin path in
  let size = in_channel_length ic in
  let data = Bytes.of_string (really_input_string ic size) in
  close_in ic;
  let floor = min Framed.data_start size in
  let cut = ref size in
  List.iter
    (fun a ->
      match a with
      | Tear _ ->
          if size > floor + 1 then
            cut := min !cut (floor + 1 + Random.State.int rng (size - floor - 1))
      | Flip _ ->
          if size > floor then begin
            let off = floor + Random.State.int rng (size - floor) in
            let bit = Random.State.int rng 8 in
            Bytes.set data off
              (Char.chr (Char.code (Bytes.get data off) lxor (1 lsl bit)))
          end)
    actions;
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub data 0 !cut);
  close_out oc;
  !cut

let layer ~name (config : config) (base : t) : t =
  match config.faults with
  | None -> { base with s_name = name }
  | Some spec ->
      {
        s_name = name;
        start =
          (fun stats ->
            let w = base.start stats in
            let records = ref 0 in
            {
              put =
                (fun payload ->
                  incr records;
                  w.put payload);
              close =
                (fun () ->
                  let f = w.close () in
                  let f = { f with f_store = name } in
                  match (f.f_path, write_kinds spec) with
                  | Some path, _ :: _ ->
                      let rng = Random.State.make [| spec.f_seed |] in
                      let actions = plan_damage spec rng ~records:!records in
                      if actions = [] then f
                      else
                        let size = apply_damage rng path actions in
                        (* readers will see the damage; size reflects any
                           tear so record accounting stays honest *)
                        { f with f_size = min f.f_size size }
                  | _ -> f);
            });
      }
