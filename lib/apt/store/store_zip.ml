(* The compressing store layer: groups consecutive record payloads into
   blocks of [config.zip_block], front-codes each payload against its
   predecessor (shared-prefix length + suffix, varint-framed), and hands
   each block to the base store as a single record. Consecutive APT
   records are highly self-similar — a pass emits runs of nodes with the
   same production, symbol and attribute shape — so sharing prefixes is a
   real delta encoding of [Node.encode] output, not just byte padding.

   Blocks decode front-to-back in one piece, so a backward read (base
   store yields the last block first) simply serves each decoded block in
   reverse: bidirectionality survives compression, which per-record delta
   chains would break.

   Raw bytes — what the base store would have moved for the same records
   without this layer, payload plus per-record framing — are tallied into
   [Io_stats.raw_bytes_*]; the base store tallies the bytes that actually
   hit the medium, so [Io_stats.compression_ratio] falls out of the
   pair. *)

open Apt_store

let common_prefix a b =
  let n = min (String.length a) (String.length b) in
  let i = ref 0 in
  while !i < n && a.[!i] = b.[!i] do incr i done;
  !i

let encode_block payloads =
  let buf = Buffer.create 512 in
  Varint.add buf (List.length payloads);
  let prev = ref "" in
  List.iter
    (fun p ->
      let prefix = common_prefix !prev p in
      Varint.add buf prefix;
      Varint.add buf (String.length p - prefix);
      Buffer.add_substring buf p prefix (String.length p - prefix);
      prev := p)
    payloads;
  Buffer.contents buf

let decode_block s =
  let n, pos = Varint.read s 0 in
  let pos = ref pos in
  let prev = ref "" in
  List.init n (fun _ ->
      let prefix, p1 = Varint.read s !pos in
      let suffix, p2 = Varint.read s p1 in
      if prefix > String.length !prev || p2 + suffix > String.length s then
        Apt_error.raise_
          (Apt_error.Corrupt_record
             {
               path = None;
               offset = !pos;
               detail = "front-coded block refers outside its bounds";
             });
      let payload = String.sub !prev 0 prefix ^ String.sub s p2 suffix in
      pos := p2 + suffix;
      prev := payload;
      payload)

let tally_raw_write stats bytes =
  match stats with
  | Some s -> Io_stats.bump s.Io_stats.raw_bytes_written bytes
  | None -> ()

let tally_raw_read stats bytes =
  match stats with
  | Some s -> Io_stats.bump s.Io_stats.raw_bytes_read bytes
  | None -> ()

let layer ~name (config : config) (base : t) : t =
  let block = max 1 config.zip_block in
  (* what the base store's framing would have cost per record *)
  let frame_overhead =
    Record_codec.overhead (if config.legacy_format then Legacy else Framed_v1)
  in
  let open_reader (base_file : file) stats dir =
    let base_reader = base_file.f_read stats dir in
    let queue = ref [] in
    let rec next () =
      match !queue with
      | p :: rest ->
          queue := rest;
          Some p
      | [] -> (
          match base_reader.next () with
          | None -> None
          | Some b ->
              let payloads = decode_block b in
              tally_raw_read stats
                (List.fold_left
                   (fun acc p -> acc + String.length p + frame_overhead)
                   0 payloads);
              queue :=
                (match dir with
                | `Forward -> payloads
                | `Backward -> List.rev payloads);
              next ())
    in
    { next; close_reader = base_reader.close_reader }
  in
  {
    s_name = name;
    start =
      (fun stats ->
        let base_writer = base.start stats in
        let pending = ref [] and pending_n = ref 0 and records = ref 0 in
        let flush () =
          if !pending_n > 0 then begin
            base_writer.put (encode_block (List.rev !pending));
            pending := [];
            pending_n := 0
          end
        in
        {
          put =
            (fun payload ->
              tally_raw_write stats (String.length payload + frame_overhead);
              pending := payload :: !pending;
              incr pending_n;
              incr records;
              if !pending_n >= block then flush ());
          close =
            (fun () ->
              flush ();
              let bf = base_writer.close () in
              {
                bf with
                f_store = name;
                f_records = !records;
                f_read = (fun stats dir -> open_reader bf stats dir);
              });
        });
  }
