(** The APT store registry: name -> configured store.

    Builtins: ["mem"], ["disk"] (the byte-compatible seed backends),
    ["paged"] (LRU buffer pool), ["prefetch"] (paged + read-ahead),
    ["zip"] and ["paged+zip"] (front-coded block compression layered
    over disk/paged), ["faulty"] (deterministic fault injection over
    prefetch, see {!Store_faulty}). [register] plugs in out-of-tree
    stores, e.g. an {!Apt_store.APT_STORE} module erased with
    {!Apt_store.pack}. *)

val register :
  name:string ->
  description:string ->
  (Apt_store.config -> Apt_store.t) ->
  unit
(** Replaces any existing entry of the same name. *)

val names : unit -> string list
(** Sorted registered names. *)

val description : string -> string option

val find : ?config:Apt_store.config -> string -> Apt_store.t
(** @raise Failure on an unknown name, listing the registered ones. *)
