(* The pluggable APT store layer.

   A store moves opaque byte records (the payloads produced by
   [Node.encode]) to and from some medium and hands them back as a
   sequential stream readable from either end — the only access pattern
   the alternating-pass evaluator ever needs. The [Aptfile] façade keeps
   the node codec and record accounting; stores own the on-medium layout
   and the byte/page/seek accounting. *)

type direction = [ `Forward | `Backward ]

type config = {
  dir : string option;  (** backing directory; [None] = system temp dir *)
  page_size : int;
  pool_pages : int;  (** buffer-pool capacity, in pages *)
  prefetch_pages : int;  (** read-ahead window on sequential access *)
  zip_block : int;  (** records per compressed block in zip layers *)
}

let default_config =
  { dir = None; page_size = 4096; pool_pages = 8; prefetch_pages = 2; zip_block = 32 }

(* ---- the erased, first-class store values ---- *)

type reader = { next : unit -> string option; close_reader : unit -> unit }

type file = {
  f_store : string;  (** name of the store that wrote it *)
  f_size : int;  (** bytes occupied on the medium *)
  f_records : int;
  f_path : string option;  (** backing file, exposed for tests/tools *)
  f_read : Io_stats.t option -> direction -> reader;
  f_dispose : unit -> unit;
}

type writer = { put : string -> unit; close : unit -> file }
type t = { s_name : string; start : Io_stats.t option -> writer }

(* ---- the module signature a store implementation satisfies ---- *)

module type APT_STORE = sig
  val name : string

  type writer
  type file
  type reader

  val open_writer : Io_stats.t option -> writer
  val put : writer -> string -> unit
  val close_writer : writer -> file
  val size_bytes : file -> int
  val record_count : file -> int
  val backing_path : file -> string option
  val open_reader : Io_stats.t option -> direction -> file -> reader
  val next : reader -> string option
  val close_reader : reader -> unit
  val dispose : file -> unit
end

let pack (module M : APT_STORE) : t =
  let wrap_file (f : M.file) : file =
    {
      f_store = M.name;
      f_size = M.size_bytes f;
      f_records = M.record_count f;
      f_path = M.backing_path f;
      f_read =
        (fun stats dir ->
          let r = M.open_reader stats dir f in
          { next = (fun () -> M.next r); close_reader = (fun () -> M.close_reader r) });
      f_dispose = (fun () -> M.dispose f);
    }
  in
  {
    s_name = M.name;
    start =
      (fun stats ->
        let w = M.open_writer stats in
        { put = M.put w; close = (fun () -> wrap_file (M.close_writer w)) });
  }

(* ---- the legacy record frame, shared by every on-medium layout ----

   4-byte little-endian payload length on both sides of the payload, so
   the stream can be walked from either end with O(1) buffering. *)

module Frame = struct
  let overhead = 8

  let u32_to_string n =
    let b = Bytes.create 4 in
    Bytes.set_uint8 b 0 (n land 0xff);
    Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
    Bytes.set_uint8 b 2 ((n lsr 16) land 0xff);
    Bytes.set_uint8 b 3 ((n lsr 24) land 0xff);
    Bytes.unsafe_to_string b

  let u32_of_string s pos =
    Char.code s.[pos]
    lor (Char.code s.[pos + 1] lsl 8)
    lor (Char.code s.[pos + 2] lsl 16)
    lor (Char.code s.[pos + 3] lsl 24)
end

(* ---- varints, shared by the zip layer's block codec ---- *)

module Varint = struct
  let add buf n =
    let rec go u =
      if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
        go (u lsr 7)
      end
    in
    if n < 0 then invalid_arg "Apt_store.Varint.add: negative";
    go n

  let read s pos =
    let rec go pos shift acc =
      if pos >= String.length s then failwith "Apt_store.Varint.read: truncated";
      let byte = Char.code s.[pos] in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    in
    go pos 0 0
end

let temp_path config =
  let dir =
    match config.dir with Some d -> d | None -> Filename.get_temp_dir_name ()
  in
  Filename.temp_file ~temp_dir:dir "apt" ".tmp"

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()
