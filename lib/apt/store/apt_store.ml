(* The pluggable APT store layer.

   A store moves opaque byte records (the payloads produced by
   [Node.encode]) to and from some medium and hands them back as a
   sequential stream readable from either end — the only access pattern
   the alternating-pass evaluator ever needs. The [Aptfile] façade keeps
   the node codec and record accounting; stores own the on-medium layout
   and the byte/page/seek accounting.

   Since the resilience PR the byte-compatible stores write a *framed*
   layout: the file opens with a 4-byte version signature and every
   record carries its CRC32 on both sides, so torn writes, short reads
   and bit flips are detected at read time and reported as typed
   [Apt_error] values with file offsets. Legacy (seed-format) files
   remain readable: readers sniff the signature and fall back to the
   unchecked legacy frame. *)

type direction = [ `Forward | `Backward ]

(* ---- deterministic fault injection (see Store_faulty) ---- *)

type fault_kind = Transient_io | Short_read | Bit_flip | Torn_write

type fault_spec = {
  f_seed : int;
  f_rate : float;  (** per-opportunity injection probability, in [0,1] *)
  f_kinds : fault_kind list;
}

type config = {
  dir : string option;  (** backing directory; [None] = system temp dir *)
  page_size : int;
  pool_pages : int;  (** buffer-pool capacity, in pages *)
  prefetch_pages : int;  (** read-ahead window on sequential access *)
  zip_block : int;  (** records per compressed block in zip layers *)
  durable : bool;  (** fsync backing files before the atomic rename *)
  legacy_format : bool;  (** write the unchecked seed layout (benches) *)
  faults : fault_spec option;  (** deterministic fault injection *)
}

let default_config =
  {
    dir = None;
    page_size = 4096;
    pool_pages = 8;
    prefetch_pages = 2;
    zip_block = 32;
    durable = false;
    legacy_format = false;
    faults = None;
  }

(* ---- the erased, first-class store values ---- *)

type reader = { next : unit -> string option; close_reader : unit -> unit }

type file = {
  f_store : string;  (** name of the store that wrote it *)
  f_size : int;  (** bytes occupied on the medium *)
  f_records : int;
  f_path : string option;  (** backing file, exposed for tests/tools *)
  f_read : Io_stats.t option -> direction -> reader;
  f_dispose : unit -> unit;
}

type writer = { put : string -> unit; close : unit -> file }
type t = { s_name : string; start : Io_stats.t option -> writer }

(* ---- the module signature a store implementation satisfies ---- *)

module type APT_STORE = sig
  val name : string

  type writer
  type file
  type reader

  val open_writer : Io_stats.t option -> writer
  val put : writer -> string -> unit
  val close_writer : writer -> file
  val size_bytes : file -> int
  val record_count : file -> int
  val backing_path : file -> string option
  val open_reader : Io_stats.t option -> direction -> file -> reader
  val next : reader -> string option
  val close_reader : reader -> unit
  val dispose : file -> unit
end

let pack (module M : APT_STORE) : t =
  let wrap_file (f : M.file) : file =
    {
      f_store = M.name;
      f_size = M.size_bytes f;
      f_records = M.record_count f;
      f_path = M.backing_path f;
      f_read =
        (fun stats dir ->
          let r = M.open_reader stats dir f in
          { next = (fun () -> M.next r); close_reader = (fun () -> M.close_reader r) });
      f_dispose = (fun () -> M.dispose f);
    }
  in
  {
    s_name = M.name;
    start =
      (fun stats ->
        let w = M.open_writer stats in
        { put = M.put w; close = (fun () -> wrap_file (M.close_writer w)) });
  }

(* ---- CRC32 (IEEE 802.3), the record checksum ---- *)

module Crc32 = struct
  let table =
    Lg_support.Once.make (fun () ->
        Array.init 256 (fun n ->
            let c = ref n in
            for _ = 0 to 7 do
              c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
            done;
            !c))

  let digest s =
    let table = Lg_support.Once.force table in
    let c = ref 0xffffffff in
    String.iter
      (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
      s;
    !c lxor 0xffffffff
end

(* ---- the legacy record frame, shared by every on-medium layout ----

   4-byte little-endian payload length on both sides of the payload, so
   the stream can be walked from either end with O(1) buffering. *)

module Frame = struct
  let overhead = 8

  let u32_to_string n =
    let b = Bytes.create 4 in
    Bytes.set_uint8 b 0 (n land 0xff);
    Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
    Bytes.set_uint8 b 2 ((n lsr 16) land 0xff);
    Bytes.set_uint8 b 3 ((n lsr 24) land 0xff);
    Bytes.unsafe_to_string b

  let u32_of_string s pos =
    Char.code s.[pos]
    lor (Char.code s.[pos + 1] lsl 8)
    lor (Char.code s.[pos + 2] lsl 16)
    lor (Char.code s.[pos + 3] lsl 24)
end

(* ---- the framed (checksummed) record format, version 1 ----

   File   := "APT1" record*
   record := u32 len | u32 crc32(payload) | payload | u32 crc | u32 len

   The (len, crc) pair sits on both sides, so the stream is still
   walkable from either end; the duplicate is also a cross-check — a
   flipped length byte makes header and trailer disagree before the
   checksum is even consulted. *)

type format = Framed_v1 | Legacy

module Framed = struct
  let magic = "APT1"
  let data_start = String.length magic
  let overhead = 16
end

module Record_codec = struct
  type source = {
    src_path : string option;
    src_size : int;
    src_read : pos:int -> len:int -> want:[ `Low | `High ] -> string;
  }

  let corrupt (src : source) ~offset detail =
    Apt_error.raise_
      (Apt_error.Corrupt_record { path = src.src_path; offset; detail })

  let truncated (src : source) ~offset detail =
    Apt_error.raise_
      (Apt_error.Truncated_file { path = src.src_path; offset; detail })

  (* Decide the on-medium format from the first bytes of the file. A
     signature within one byte of "APT1" is treated as a damaged or
     future version — not silently parsed as a legacy stream. *)
  let sniff_prefix ~path ~size prefix =
    if size = 0 then Legacy
    else if size >= Framed.data_start && String.length prefix >= Framed.data_start
    then begin
      let head = String.sub prefix 0 Framed.data_start in
      if String.equal head Framed.magic then Framed_v1
      else
        let matching = ref 0 in
        String.iteri
          (fun i c -> if Char.equal c Framed.magic.[i] then incr matching)
          head;
        if !matching >= String.length Framed.magic - 1 then
          Apt_error.raise_ (Apt_error.Version_mismatch { path; found = head })
        else Legacy
    end
    else Legacy

  let sniff (src : source) =
    if src.src_size < Framed.data_start then
      sniff_prefix ~path:src.src_path ~size:src.src_size ""
    else
      sniff_prefix ~path:src.src_path ~size:src.src_size
        (src.src_read ~pos:0 ~len:Framed.data_start ~want:`High)

  let data_start = function Framed_v1 -> Framed.data_start | Legacy -> 0
  let overhead = function Framed_v1 -> Framed.overhead | Legacy -> Frame.overhead
  let start_marker = function Framed_v1 -> Framed.magic | Legacy -> ""

  (* header and trailer strings for [payload] *)
  let frame format payload =
    let len = Frame.u32_to_string (String.length payload) in
    match format with
    | Legacy -> (len, len)
    | Framed_v1 ->
        let crc = Frame.u32_to_string (Crc32.digest payload) in
        (len ^ crc, crc ^ len)

  let check_crc src ~offset ~stored payload =
    let computed = Crc32.digest payload in
    if computed <> stored then
      corrupt src ~offset
        (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
           stored computed)

  (* One record starting at [pos], scanning up. Returns (payload, next
     position), or [None] at the end of the stream. *)
  let next_forward format (src : source) ~pos =
    if pos >= src.src_size then None
    else
      match format with
      | Legacy ->
          if pos + Frame.overhead > src.src_size then
            truncated src ~offset:pos "partial legacy frame";
          let len =
            Frame.u32_of_string (src.src_read ~pos ~len:4 ~want:`High) 0
          in
          if len < 0 || pos + len + Frame.overhead > src.src_size then
            truncated src ~offset:pos
              (Printf.sprintf "legacy header claims %d payload bytes" len);
          let payload = src.src_read ~pos:(pos + 4) ~len ~want:`High in
          Some (payload, pos + len + Frame.overhead)
      | Framed_v1 ->
          if pos + Framed.overhead > src.src_size then
            truncated src ~offset:pos "partial record frame";
          let header = src.src_read ~pos ~len:8 ~want:`High in
          let len = Frame.u32_of_string header 0 in
          let crc = Frame.u32_of_string header 4 in
          if len < 0 || pos + len + Framed.overhead > src.src_size then
            truncated src ~offset:pos
              (Printf.sprintf "header claims %d payload bytes past EOF" len);
          let trailer = src.src_read ~pos:(pos + 8 + len) ~len:8 ~want:`High in
          if Frame.u32_of_string trailer 4 <> len then
            corrupt src ~offset:pos "trailer length disagrees with header";
          if Frame.u32_of_string trailer 0 <> crc then
            corrupt src ~offset:pos "trailer checksum disagrees with header";
          let payload = src.src_read ~pos:(pos + 8) ~len ~want:`High in
          check_crc src ~offset:pos ~stored:crc payload;
          Some (payload, pos + len + Framed.overhead)

  (* One record ending at [pos], scanning down. *)
  let next_backward format (src : source) ~pos =
    let floor = data_start format in
    if pos <= floor then None
    else
      match format with
      | Legacy ->
          if pos - Frame.overhead < floor then
            truncated src ~offset:pos "partial legacy frame";
          let len =
            Frame.u32_of_string (src.src_read ~pos:(pos - 4) ~len:4 ~want:`Low) 0
          in
          if len < 0 || pos - len - Frame.overhead < floor then
            truncated src ~offset:pos
              (Printf.sprintf "legacy trailer claims %d payload bytes" len);
          let payload = src.src_read ~pos:(pos - 4 - len) ~len ~want:`Low in
          Some (payload, pos - len - Frame.overhead)
      | Framed_v1 ->
          if pos - Framed.overhead < floor then
            truncated src ~offset:pos "partial record frame";
          let trailer = src.src_read ~pos:(pos - 8) ~len:8 ~want:`Low in
          let crc = Frame.u32_of_string trailer 0 in
          let len = Frame.u32_of_string trailer 4 in
          if len < 0 || pos - len - Framed.overhead < floor then
            truncated src ~offset:(pos - 8)
              (Printf.sprintf "trailer claims %d payload bytes before start" len);
          let start = pos - len - Framed.overhead in
          let header = src.src_read ~pos:start ~len:8 ~want:`High in
          if Frame.u32_of_string header 0 <> len then
            corrupt src ~offset:start "header length disagrees with trailer";
          if Frame.u32_of_string header 4 <> crc then
            corrupt src ~offset:start "header checksum disagrees with trailer";
          let payload = src.src_read ~pos:(start + 8) ~len ~want:`Low in
          check_crc src ~offset:start ~stored:crc payload;
          Some (payload, start)
end

(* ---- varints, shared by the zip layer's block codec ---- *)

module Varint = struct
  let add buf n =
    let rec go u =
      if u land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr u)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (u land 0x7f)));
        go (u lsr 7)
      end
    in
    if n < 0 then invalid_arg "Apt_store.Varint.add: negative";
    go n

  let read s pos =
    let rec go pos shift acc =
      if pos >= String.length s then
        Apt_error.raise_
          (Apt_error.Corrupt_record
             { path = None; offset = pos; detail = "truncated varint" });
      let byte = Char.code s.[pos] in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then (acc, pos + 1) else go (pos + 1) (shift + 7) acc
    in
    go pos 0 0
end

let temp_path config =
  let dir =
    match config.dir with Some d -> d | None -> Filename.get_temp_dir_name ()
  in
  Filename.temp_file ~temp_dir:dir "apt" ".tmp"

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* ---- crash-safe output channels ----

   Writers stream into [path ^ ".part"] and atomically rename over the
   final path on [commit] (optionally fsyncing first, [--apt-durable]).
   A crash mid-write can only ever leave a stale ".part" file behind —
   the final path never holds a partial stream. *)

module Atomic_out = struct
  type ch = { final : string; part : string; oc : out_channel; durable : bool }

  let create ?(durable = false) path =
    let part = path ^ ".part" in
    { final = path; part; oc = open_out_bin part; durable }

  let channel a = a.oc

  let commit a =
    flush a.oc;
    if a.durable then (try Unix.fsync (Unix.descr_of_out_channel a.oc) with Unix.Unix_error _ -> ());
    close_out a.oc;
    Sys.rename a.part a.final

  let abort a =
    (try close_out a.oc with Sys_error _ -> ());
    remove_quietly a.part
end
