(** The pluggable APT store layer.

    A store moves opaque byte records — the payloads produced by
    {!Node.encode} — to and from some medium, and streams them back
    sequentially from either end: the only access pattern the
    alternating-pass evaluator needs (paper §II/§IV). The {!Aptfile}
    façade keeps the node codec and record accounting; stores own the
    on-medium layout and tally bytes, pages and seeks into {!Io_stats}.

    Byte-compatible stores write the checksummed {e framed} layout
    ({!Framed}, {!Record_codec}) unless [config.legacy_format] asks for
    the unchecked seed layout; readers sniff the file signature and
    accept both. Integrity failures surface as {!Apt_error} values.

    A store can be written two ways: directly as the erased record type
    {!t} (closures), or as a module satisfying {!APT_STORE} and erased
    with {!pack}. Registration happens in {!Store_registry}. *)

type direction = [ `Forward | `Backward ]

(** Deterministic fault injection (see {!Store_faulty}): which faults,
    how often, and the RNG seed that makes a campaign reproducible. *)
type fault_kind =
  | Transient_io  (** read fails once (EIO); absorbed by pager retries *)
  | Short_read  (** a physical read returns fewer bytes than asked *)
  | Bit_flip  (** one bit of the written file is flipped *)
  | Torn_write  (** the written file is truncated mid-record *)

type fault_spec = {
  f_seed : int;
  f_rate : float;  (** per-opportunity injection probability, in [0,1] *)
  f_kinds : fault_kind list;
}

type config = {
  dir : string option;  (** backing directory; [None] = system temp dir *)
  page_size : int;  (** page size for paged stores, bytes *)
  pool_pages : int;  (** buffer-pool capacity, in pages *)
  prefetch_pages : int;  (** read-ahead window on sequential access *)
  zip_block : int;  (** records per compressed block in zip layers *)
  durable : bool;  (** fsync backing files before the atomic rename *)
  legacy_format : bool;  (** write the unchecked seed layout (benches) *)
  faults : fault_spec option;  (** deterministic fault injection *)
}

val default_config : config
(** 4 KiB pages, 8-page pool, 2-page read-ahead, 32-record blocks;
    framed format, no fsync, no faults. *)

type reader = { next : unit -> string option; close_reader : unit -> unit }

type file = {
  f_store : string;  (** name of the store that wrote it *)
  f_size : int;  (** bytes occupied on the medium *)
  f_records : int;
  f_path : string option;  (** backing file, exposed for tests/tools *)
  f_read : Io_stats.t option -> direction -> reader;
  f_dispose : unit -> unit;
}

type writer = { put : string -> unit; close : unit -> file }
type t = { s_name : string; start : Io_stats.t option -> writer }

(** What a store implementation provides before type erasure. *)
module type APT_STORE = sig
  val name : string

  type writer
  type file
  type reader

  val open_writer : Io_stats.t option -> writer
  val put : writer -> string -> unit
  val close_writer : writer -> file
  val size_bytes : file -> int
  val record_count : file -> int
  val backing_path : file -> string option
  val open_reader : Io_stats.t option -> direction -> file -> reader
  val next : reader -> string option
  val close_reader : reader -> unit
  val dispose : file -> unit
end

val pack : (module APT_STORE) -> t
(** Erase an [APT_STORE] module into a first-class store value. *)

(** CRC32 (IEEE 802.3 polynomial), the record checksum of the framed
    format. *)
module Crc32 : sig
  val digest : string -> int
end

(** The legacy record frame shared by the byte-compatible layouts:
    a 4-byte little-endian payload length on {e both} sides. *)
module Frame : sig
  val overhead : int
  val u32_to_string : int -> string
  val u32_of_string : string -> int -> int
end

(** Constants of the checksummed framed format, version 1: the file
    opens with the {!Framed.magic} signature and every record is
    [u32 len | u32 crc | payload | u32 crc | u32 len]. *)
module Framed : sig
  val magic : string

  val data_start : int
  (** byte offset of the first record *)

  val overhead : int
  (** framing bytes added per record *)
end

type format = Framed_v1 | Legacy

(** The shared record walk: given a positioned byte [source], decode
    records in either direction under either on-medium format, raising
    typed {!Apt_error} values (with file offsets) on any integrity
    failure. All byte-compatible stores and the {!Salvage} scanner are
    built on this one codec. *)
module Record_codec : sig
  type source = {
    src_path : string option;
    src_size : int;
    src_read : pos:int -> len:int -> want:[ `Low | `High ] -> string;
  }

  val sniff : source -> format
  (** Decide the format from the file signature. A signature within one
      byte of {!Framed.magic} raises [Version_mismatch] — damaged or
      future-versioned files are never silently parsed as legacy. *)

  val sniff_prefix : path:string option -> size:int -> string -> format
  (** Like {!sniff} for callers that already hold the first bytes. *)

  val data_start : format -> int
  val overhead : format -> int
  val start_marker : format -> string
  (** What a writer emits before the first record. *)

  val frame : format -> string -> string * string
  (** [(header, trailer)] strings for a payload. *)

  val next_forward : format -> source -> pos:int -> (string * int) option
  (** Record starting at [pos] and the position after it; [None] at the
      end of the stream. *)

  val next_backward : format -> source -> pos:int -> (string * int) option
  (** Record ending at [pos] and the position before it; [None] at the
      start of the stream. *)
end

(** LEB128-style varints, used by the zip layer's block codec. *)
module Varint : sig
  val add : Buffer.t -> int -> unit
  val read : string -> int -> int * int  (** (value, next position) *)
end

val temp_path : config -> string
(** Fresh temp file under [config.dir] (or the system temp dir). *)

val remove_quietly : string -> unit

(** Crash-safe output channels: stream into [path ^ ".part"], atomically
    rename over [path] on {!Atomic_out.commit} (fsyncing first when
    [durable]). The final path never holds a partial stream. *)
module Atomic_out : sig
  type ch

  val create : ?durable:bool -> string -> ch
  val channel : ch -> out_channel
  val commit : ch -> unit
  val abort : ch -> unit
end
