(** The pluggable APT store layer.

    A store moves opaque byte records — the payloads produced by
    {!Node.encode} — to and from some medium, and streams them back
    sequentially from either end: the only access pattern the
    alternating-pass evaluator needs (paper §II/§IV). The {!Aptfile}
    façade keeps the node codec and record accounting; stores own the
    on-medium layout and tally bytes, pages and seeks into {!Io_stats}.

    A store can be written two ways: directly as the erased record type
    {!t} (closures), or as a module satisfying {!APT_STORE} and erased
    with {!pack}. Registration happens in {!Store_registry}. *)

type direction = [ `Forward | `Backward ]

type config = {
  dir : string option;  (** backing directory; [None] = system temp dir *)
  page_size : int;  (** page size for paged stores, bytes *)
  pool_pages : int;  (** buffer-pool capacity, in pages *)
  prefetch_pages : int;  (** read-ahead window on sequential access *)
  zip_block : int;  (** records per compressed block in zip layers *)
}

val default_config : config
(** 4 KiB pages, 8-page pool, 2-page read-ahead, 32-record blocks. *)

type reader = { next : unit -> string option; close_reader : unit -> unit }

type file = {
  f_store : string;  (** name of the store that wrote it *)
  f_size : int;  (** bytes occupied on the medium *)
  f_records : int;
  f_path : string option;  (** backing file, exposed for tests/tools *)
  f_read : Io_stats.t option -> direction -> reader;
  f_dispose : unit -> unit;
}

type writer = { put : string -> unit; close : unit -> file }
type t = { s_name : string; start : Io_stats.t option -> writer }

(** What a store implementation provides before type erasure. *)
module type APT_STORE = sig
  val name : string

  type writer
  type file
  type reader

  val open_writer : Io_stats.t option -> writer
  val put : writer -> string -> unit
  val close_writer : writer -> file
  val size_bytes : file -> int
  val record_count : file -> int
  val backing_path : file -> string option
  val open_reader : Io_stats.t option -> direction -> file -> reader
  val next : reader -> string option
  val close_reader : reader -> unit
  val dispose : file -> unit
end

val pack : (module APT_STORE) -> t
(** Erase an [APT_STORE] module into a first-class store value. *)

(** The legacy record frame shared by the byte-compatible layouts:
    a 4-byte little-endian payload length on {e both} sides. *)
module Frame : sig
  val overhead : int
  val u32_to_string : int -> string
  val u32_of_string : string -> int -> int
end

(** LEB128-style varints, used by the zip layer's block codec. *)
module Varint : sig
  val add : Buffer.t -> int -> unit
  val read : string -> int -> int * int  (** (value, next position) *)
end

val temp_path : config -> string
(** Fresh temp file under [config.dir] (or the system temp dir). *)

val remove_quietly : string -> unit
