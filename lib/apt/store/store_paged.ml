(* The paged disk store: the same framed record layout as the [disk]
   store (files are byte-identical), but all I/O goes through a
   fixed-size page buffer pool ([Store_pager]), so a backward scan costs
   one physical read per page instead of two seeks per record. With
   [prefetch > 0] the pool reads ahead in the detected scan direction —
   that configuration is registered separately as the "prefetch" store.

   Record decoding is [Apt_store.Record_codec] over the pool: the codec's
   [want] direction tells the pool which neighbouring bytes the decode
   certainly needs next, so a frame probe never pays for the far side of
   the page. The file signature is sniffed with one raw (unpooled) read,
   and the pool's page-0 floor excludes those bytes — a full scan still
   moves exactly [size] bytes. *)

open Apt_store

let make ?(name = "paged") ?(prefetch = 0) config : t =
  let format = if config.legacy_format then Legacy else Framed_v1 in
  let open_reader path size stats dir =
    (* sniff first with a raw read so the pool can floor page 0 at the
       signature boundary *)
    let r_format =
      Record_codec.sniff_prefix ~path:(Some path) ~size
        (if size >= Framed.data_start then begin
           let ic = open_in_bin path in
           let prefix =
             try really_input_string ic Framed.data_start
             with End_of_file -> ""
           in
           close_in ic;
           prefix
         end
         else "")
    in
    let data_start = Record_codec.data_start r_format in
    let pager =
      Store_pager.create ?stats ~data_start ?faults:config.faults
        ~page_size:config.page_size ~capacity:config.pool_pages ~prefetch
        ~path ~size ()
    in
    (* charge the signature bytes through the pager so the accounting
       matches the other stores (and leaves the head at [data_start]) *)
    if data_start > 0 then ignore (Store_pager.pread pager ~pos:0 ~len:data_start);
    let source =
      {
        Record_codec.src_path = Some path;
        src_size = size;
        src_read = (fun ~pos ~len ~want -> Store_pager.read pager ~pos ~len ~want);
      }
    in
    let pos = ref (match dir with `Forward -> data_start | `Backward -> size) in
    let next () =
      let step =
        match dir with
        | `Forward -> Record_codec.next_forward r_format source ~pos:!pos
        | `Backward -> Record_codec.next_backward r_format source ~pos:!pos
      in
      match step with
      | None -> None
      | Some (payload, p) ->
          pos := p;
          Some payload
    in
    { next; close_reader = (fun () -> Store_pager.close pager) }
  in
  {
    s_name = name;
    start =
      (fun stats ->
        let path = temp_path config in
        let w =
          Store_pager.create_writer ?stats ~durable:config.durable
            ~page_size:config.page_size ~path ()
        in
        Store_pager.append w (Record_codec.start_marker format);
        let records = ref 0 in
        {
          put =
            (fun payload ->
              let header, trailer = Record_codec.frame format payload in
              Store_pager.append w header;
              Store_pager.append w payload;
              Store_pager.append w trailer;
              incr records);
          close =
            (fun () ->
              let size = Store_pager.close_writer w in
              {
                f_store = name;
                f_size = size;
                f_records = !records;
                f_path = Some path;
                f_read = (fun stats dir -> open_reader path size stats dir);
                f_dispose = (fun () -> remove_quietly path);
              });
        });
  }
