(* The paged disk store: the same framed record layout as the legacy
   [disk] store (files are byte-identical), but all I/O goes through a
   fixed-size page buffer pool ([Store_pager]), so a backward scan costs
   one physical read per page instead of two seeks per record. With
   [prefetch > 0] the pool reads ahead in the detected scan direction —
   that configuration is registered separately as the "prefetch" store. *)

open Apt_store

(* [want] tells the pool which neighbouring bytes the decode certainly
   needs next, so a frame probe never pays for the far side of the page:
   a header's page is read from the header up (the payload lies above),
   a backward trailer's page from the trailer down. *)
let frame_len_at pager pos ~want =
  Frame.u32_of_string (Store_pager.read pager ~pos ~len:4 ~want) 0

let corrupt what = failwith (Printf.sprintf "Aptfile: corrupt record frame (%s)" what)

let make ?(name = "paged") ?(prefetch = 0) config : t =
  let open_reader path size stats dir =
    let pager =
      Store_pager.create ?stats ~page_size:config.page_size
        ~capacity:config.pool_pages ~prefetch ~path ~size ()
    in
    let pos = ref (match dir with `Forward -> 0 | `Backward -> size) in
    let next () =
      match dir with
      | `Forward ->
          if !pos >= size then None
          else begin
            let len = frame_len_at pager !pos ~want:`High in
            if len < 0 || !pos + len + Frame.overhead > size then
              corrupt "forward header";
            if frame_len_at pager (!pos + 4 + len) ~want:`High <> len then
              corrupt "trailer disagrees with header";
            let payload = Store_pager.read pager ~pos:(!pos + 4) ~len ~want:`High in
            pos := !pos + len + Frame.overhead;
            Some payload
          end
      | `Backward ->
          if !pos <= 0 then None
          else begin
            let len = frame_len_at pager (!pos - 4) ~want:`Low in
            if len < 0 || !pos - len - Frame.overhead < 0 then
              corrupt "backward trailer";
            if frame_len_at pager (!pos - len - Frame.overhead) ~want:`High <> len
            then corrupt "header disagrees with trailer";
            let payload =
              Store_pager.read pager ~pos:(!pos - 4 - len) ~len ~want:`Low
            in
            pos := !pos - len - Frame.overhead;
            Some payload
          end
    in
    { next; close_reader = (fun () -> Store_pager.close pager) }
  in
  {
    s_name = name;
    start =
      (fun stats ->
        let path = temp_path config in
        let w =
          Store_pager.create_writer ?stats ~page_size:config.page_size ~path ()
        in
        let records = ref 0 in
        {
          put =
            (fun payload ->
              let frame = Frame.u32_to_string (String.length payload) in
              Store_pager.append w frame;
              Store_pager.append w payload;
              Store_pager.append w frame;
              incr records);
          close =
            (fun () ->
              let size = Store_pager.close_writer w in
              {
                f_store = name;
                f_size = size;
                f_records = !records;
                f_path = Some path;
                f_read = (fun stats dir -> open_reader path size stats dir);
                f_dispose = (fun () -> remove_quietly path);
              });
        });
  }
