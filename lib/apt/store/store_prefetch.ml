(* The prefetching store: the paged store with read-ahead enabled. On a
   pool miss during a sequential scan the pager fetches the next
   [prefetch_pages] pages of the scan direction in the same physical
   operation; hits on those pages are tallied as [Io_stats.prefetch_hits].
   The alternating-pass evaluator's access pattern is purely sequential,
   so nearly every page after the first arrives ahead of its use. *)

let make (config : Apt_store.config) =
  Store_paged.make ~name:"prefetch"
    ~prefetch:(max 1 config.prefetch_pages)
    config
