(* The two whole-record backends. [Mem] is implemented as an [APT_STORE]
   module run through [Apt_store.pack] (proving the signature is the real
   plug point); [disk] is the unbuffered whole-record file store whose
   per-record seeking the paged stores exist to beat — its reader tallies
   those repositionings into [Io_stats.seeks].

   Both write the checksummed framed layout by default (or the seed's
   unchecked [u32 len | payload | u32 len] when asked for the legacy
   format) and sniff the signature on read, so either store reads either
   layout. All record decoding goes through [Apt_store.Record_codec],
   which turns every integrity failure into a typed [Apt_error] with a
   file offset. *)

open Apt_store

let tally_write stats bytes =
  match stats with
  | Some s -> Io_stats.bump s.Io_stats.bytes_written bytes
  | None -> ()

let tally_read stats bytes =
  match stats with
  | Some s -> Io_stats.bump s.Io_stats.bytes_read bytes
  | None -> ()

let tally_seek stats =
  match stats with
  | Some s -> Io_stats.bump s.Io_stats.seeks 1
  | None -> ()

module Mem (F : sig
  val format : format
end) : APT_STORE = struct
  let name = "mem"

  type writer = { buf : Buffer.t; w_stats : Io_stats.t option; mutable w_records : int }
  type file = { data : string; records : int }

  type reader = {
    source : Record_codec.source;
    r_format : format;
    mutable pos : int;
    r_dir : direction;
    r_stats : Io_stats.t option;
  }

  let open_writer stats =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Record_codec.start_marker F.format);
    (* the signature hits the medium like any other byte *)
    tally_write stats (Record_codec.data_start F.format);
    { buf; w_stats = stats; w_records = 0 }

  let put w payload =
    let header, trailer = Record_codec.frame F.format payload in
    Buffer.add_string w.buf header;
    Buffer.add_string w.buf payload;
    Buffer.add_string w.buf trailer;
    w.w_records <- w.w_records + 1;
    tally_write w.w_stats
      (String.length payload + Record_codec.overhead F.format)

  let close_writer w = { data = Buffer.contents w.buf; records = w.w_records }
  let size_bytes f = String.length f.data
  let record_count f = f.records
  let backing_path _ = None

  let open_reader stats dir f =
    let source =
      {
        Record_codec.src_path = None;
        src_size = String.length f.data;
        src_read =
          (fun ~pos ~len ~want:_ ->
            if pos < 0 || pos + len > String.length f.data then
              Apt_error.raise_
                (Apt_error.Truncated_file
                   { path = None; offset = pos; detail = "read past end of buffer" });
            String.sub f.data pos len);
      }
    in
    let r_format = Record_codec.sniff source in
    (* the signature was inspected, like any other store's sniff read *)
    tally_read stats (Record_codec.data_start r_format);
    let pos =
      match dir with
      | `Forward -> Record_codec.data_start r_format
      | `Backward -> String.length f.data
    in
    { source; r_format; pos; r_dir = dir; r_stats = stats }

  let next r =
    let step =
      match r.r_dir with
      | `Forward -> Record_codec.next_forward r.r_format r.source ~pos:r.pos
      | `Backward -> Record_codec.next_backward r.r_format r.source ~pos:r.pos
    in
    match step with
    | None -> None
    | Some (payload, pos) ->
        r.pos <- pos;
        tally_read r.r_stats
          (String.length payload + Record_codec.overhead r.r_format);
        Some payload

  let close_reader _ = ()
  let dispose _ = ()
end

let mem ?(format = Framed_v1) () =
  let module M = Mem (struct
    let format = format
  end) in
  pack (module M)

(* ---- the unbuffered disk store ---- *)

type disk_writer = {
  path : string;
  out : Atomic_out.ch;
  d_format : format;
  dw_stats : Io_stats.t option;
  mutable dw_records : int;
}

let disk config : t =
  let format = if config.legacy_format then Legacy else Framed_v1 in
  let open_reader file_path size stats dir =
    let ic = open_in_bin file_path in
    let phys = ref 0 in
    (* every non-contiguous repositioning is a seek on the period device *)
    let read_at ~pos ~len ~want:_ =
      if pos < 0 || pos + len > size then
        Apt_error.raise_
          (Apt_error.Truncated_file
             {
               path = Some file_path;
               offset = pos;
               detail = "read past end of file";
             });
      if pos <> !phys then begin
        tally_seek stats;
        seek_in ic pos
      end;
      phys := pos + len;
      really_input_string ic len
    in
    let source =
      { Record_codec.src_path = Some file_path; src_size = size; src_read = read_at }
    in
    let r_format = Record_codec.sniff source in
    tally_read stats (Record_codec.data_start r_format);
    let pos =
      ref
        (match dir with
        | `Forward -> Record_codec.data_start r_format
        | `Backward -> size)
    in
    let next () =
      let step =
        match dir with
        | `Forward -> Record_codec.next_forward r_format source ~pos:!pos
        | `Backward -> Record_codec.next_backward r_format source ~pos:!pos
      in
      match step with
      | None -> None
      | Some (payload, p) ->
          pos := p;
          tally_read stats
            (String.length payload + Record_codec.overhead r_format);
          Some payload
    in
    { next; close_reader = (fun () -> close_in ic) }
  in
  let close_writer w =
    let size = pos_out (Atomic_out.channel w.out) in
    Atomic_out.commit w.out;
    {
      f_store = "disk";
      f_size = size;
      f_records = w.dw_records;
      f_path = Some w.path;
      f_read = (fun stats dir -> open_reader w.path size stats dir);
      f_dispose = (fun () -> remove_quietly w.path);
    }
  in
  {
    s_name = "disk";
    start =
      (fun stats ->
        let path = temp_path config in
        let out = Atomic_out.create ~durable:config.durable path in
        output_string (Atomic_out.channel out) (Record_codec.start_marker format);
        tally_write stats (Record_codec.data_start format);
        let w = { path; out; d_format = format; dw_stats = stats; dw_records = 0 } in
        {
          put =
            (fun payload ->
              let header, trailer = Record_codec.frame w.d_format payload in
              let oc = Atomic_out.channel w.out in
              output_string oc header;
              output_string oc payload;
              output_string oc trailer;
              w.dw_records <- w.dw_records + 1;
              tally_write w.dw_stats
                (String.length payload + Record_codec.overhead w.d_format));
          close = (fun () -> close_writer w);
        });
  }
