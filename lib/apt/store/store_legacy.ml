(* The two seed backends, kept byte-for-byte compatible: every record is
   [u32 len | payload | u32 len]. [mem] is implemented as an [APT_STORE]
   module run through [Apt_store.pack] (proving the signature is the real
   plug point); [disk] is the unbuffered whole-record file store whose
   per-record seeking the paged stores exist to beat — its reader now
   tallies those repositionings into [Io_stats.seeks]. *)

open Apt_store

let tally_write stats bytes =
  match stats with
  | Some s -> s.Io_stats.bytes_written <- s.Io_stats.bytes_written + bytes
  | None -> ()

let tally_read stats bytes =
  match stats with
  | Some s -> s.Io_stats.bytes_read <- s.Io_stats.bytes_read + bytes
  | None -> ()

let tally_seek stats =
  match stats with
  | Some s -> s.Io_stats.seeks <- s.Io_stats.seeks + 1
  | None -> ()

module Mem : APT_STORE = struct
  let name = "mem"

  type writer = { buf : Buffer.t; w_stats : Io_stats.t option; mutable w_records : int }
  type file = { data : string; records : int }

  type reader = {
    r_data : string;
    mutable pos : int;
    r_dir : direction;
    r_stats : Io_stats.t option;
  }

  let open_writer stats = { buf = Buffer.create 4096; w_stats = stats; w_records = 0 }

  let put w payload =
    let len = String.length payload in
    let frame = Frame.u32_to_string len in
    Buffer.add_string w.buf frame;
    Buffer.add_string w.buf payload;
    Buffer.add_string w.buf frame;
    w.w_records <- w.w_records + 1;
    tally_write w.w_stats (len + Frame.overhead)

  let close_writer w = { data = Buffer.contents w.buf; records = w.w_records }
  let size_bytes f = String.length f.data
  let record_count f = f.records
  let backing_path _ = None

  let open_reader stats dir f =
    let pos = match dir with `Forward -> 0 | `Backward -> String.length f.data in
    { r_data = f.data; pos; r_dir = dir; r_stats = stats }

  let slice r pos len =
    if pos < 0 || pos + len > String.length r.r_data then
      failwith "Aptfile: truncated file";
    String.sub r.r_data pos len

  let next r =
    match r.r_dir with
    | `Forward ->
        if r.pos >= String.length r.r_data then None
        else begin
          let len = Frame.u32_of_string (slice r r.pos 4) 0 in
          let payload = slice r (r.pos + 4) len in
          r.pos <- r.pos + len + Frame.overhead;
          tally_read r.r_stats (len + Frame.overhead);
          Some payload
        end
    | `Backward ->
        if r.pos <= 0 then None
        else begin
          let len = Frame.u32_of_string (slice r (r.pos - 4) 4) 0 in
          let payload = slice r (r.pos - 4 - len) len in
          r.pos <- r.pos - len - Frame.overhead;
          tally_read r.r_stats (len + Frame.overhead);
          Some payload
        end

  let close_reader _ = ()
  let dispose _ = ()
end

let mem () = pack (module Mem)

(* ---- the unbuffered disk store ---- *)

type disk_writer = {
  path : string;
  oc : out_channel;
  dw_stats : Io_stats.t option;
  mutable dw_records : int;
}

let disk config : t =
  let open_reader file_path size stats dir =
    let ic = open_in_bin file_path in
    let pos = ref (match dir with `Forward -> 0 | `Backward -> size) in
    let phys = ref 0 in
    (* every non-contiguous repositioning is a seek on the period device *)
    let read_at p len =
      if p < 0 || p + len > size then failwith "Aptfile: truncated file";
      if p <> !phys then begin
        tally_seek stats;
        seek_in ic p
      end;
      phys := p + len;
      really_input_string ic len
    in
    let next () =
      match dir with
      | `Forward ->
          if !pos >= size then None
          else begin
            let len = Frame.u32_of_string (read_at !pos 4) 0 in
            let payload = read_at (!pos + 4) len in
            pos := !pos + len + Frame.overhead;
            tally_read stats (len + Frame.overhead);
            Some payload
          end
      | `Backward ->
          if !pos <= 0 then None
          else begin
            let len = Frame.u32_of_string (read_at (!pos - 4) 4) 0 in
            let payload = read_at (!pos - 4 - len) len in
            pos := !pos - len - Frame.overhead;
            tally_read stats (len + Frame.overhead);
            Some payload
          end
    in
    { next; close_reader = (fun () -> close_in ic) }
  in
  let close_writer w =
    let size = pos_out w.oc in
    close_out w.oc;
    {
      f_store = "disk";
      f_size = size;
      f_records = w.dw_records;
      f_path = Some w.path;
      f_read = (fun stats dir -> open_reader w.path size stats dir);
      f_dispose = (fun () -> remove_quietly w.path);
    }
  in
  {
    s_name = "disk";
    start =
      (fun stats ->
        let path = temp_path config in
        let w = { path; oc = open_out_bin path; dw_stats = stats; dw_records = 0 } in
        {
          put =
            (fun payload ->
              let len = String.length payload in
              let frame = Frame.u32_to_string len in
              output_string w.oc frame;
              output_string w.oc payload;
              output_string w.oc frame;
              w.dw_records <- w.dw_records + 1;
              tally_write w.dw_stats (len + Frame.overhead));
          close = (fun () -> close_writer w);
        });
  }
