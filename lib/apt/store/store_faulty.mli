(** Deterministic fault injection (the ["faulty"] registry entry).

    {!layer} wraps a backing-file store and damages the medium at writer
    close according to [config.faults]: torn writes truncate the file,
    bit flips corrupt single bits. Read-side kinds (transient EIO, short
    reads) are injected inside {!Store_pager} — below the checksum
    layer — where the bounded retry policy absorbs them.

    With [config.faults = None] the layer is the base store renamed. *)

val parse_spec : string -> (Apt_store.fault_spec, string) result
(** Parse ["SEED:RATE:KINDS"] (kinds: comma list of
    [transient|short|flip|torn], or [all]) — the [--apt-faults] syntax. *)

val spec_to_string : Apt_store.fault_spec -> string

val layer : name:string -> Apt_store.config -> Apt_store.t -> Apt_store.t
