(* Page-grained I/O for the paged stores: an LRU buffer pool over a
   backing file, with optional read-ahead, plus a page-buffered append
   writer. All byte/page/seek accounting for paged stores happens here.

   Cost model: one physical operation transfers one contiguous byte range
   and costs a seek only when it does not start where the previous
   operation left the head. Pool entries hold a contiguous *segment* of a
   page: a miss fetches from the requested offset toward the side the
   caller says the scan needs next ([want]), and later requests extend the
   segment with prefix/suffix fetches instead of re-reading held bytes.
   A full sequential scan therefore moves exactly [size] bytes — never
   more than the legacy store — and a partial read (say, just the root
   record) is never charged for bytes on the far side of a frame.

   This is also where the resilience policy lives. Every physical
   transfer runs under a bounded retry-with-backoff loop: a transient
   fault (injected EIO or short read — see [Apt_error.Transient]) is
   retried up to [max_attempts] times with the head position invalidated
   so the next attempt re-seeks; each repeat is tallied into
   [Io_stats.retries]. When the budget runs out the pages covering the
   failing range are quarantined — further reads of them fail
   immediately — and the caller sees a typed [Exhausted_retries]. *)

type page = {
  mutable base : int;  (** offset within the page of [data]'s first byte *)
  mutable data : string;
  mutable tick : int;
  mutable prefetched : bool;
}

type t = {
  ic : in_channel;
  path : string;
  size : int;
  page_size : int;
  capacity : int;
  prefetch : int;
  data_start : int;
      (** floor for page-0 [`Low] widening: the file signature is read
          raw by the format sniff, so the pool never re-fetches it *)
  stats : Io_stats.t option;
  pages : (int, page) Hashtbl.t;
  quarantined : (int, unit) Hashtbl.t;
  faults : (Apt_store.fault_spec * Random.State.t) option;
  mutable clock : int;
  mutable phys : int;  (** where the medium's head currently sits *)
  mutable last_page : int;  (** last explicitly requested page *)
  mutable last_dir : int;  (** +1 / -1 / 0: detected scan direction *)
}

let max_attempts = 4

let create ?stats ?(data_start = 0) ?faults ~page_size ~capacity ~prefetch
    ~path ~size () =
  if page_size <= 0 then invalid_arg "Store_pager.create: page_size";
  let faults =
    match faults with
    | Some ({ Apt_store.f_kinds; _ } as spec)
      when List.exists
             (function
               | Apt_store.Transient_io | Apt_store.Short_read -> true
               | _ -> false)
             f_kinds ->
        Some (spec, Random.State.make [| spec.Apt_store.f_seed |])
    | _ -> None
  in
  {
    ic = open_in_bin path;
    path;
    size;
    page_size;
    capacity = max 2 capacity;
    prefetch = max 0 prefetch;
    data_start;
    stats;
    pages = Hashtbl.create 16;
    quarantined = Hashtbl.create 4;
    faults;
    clock = 0;
    phys = 0;
    last_page = min_int;
    last_dir = 0;
  }

let close t = close_in t.ic

let page_len t n = min t.page_size (t.size - (n * t.page_size))
let tally f t = match t.stats with Some s -> f s | None -> ()

let evict_to_capacity t =
  while Hashtbl.length t.pages >= t.capacity do
    let victim =
      Hashtbl.fold
        (fun n p acc ->
          match acc with
          | Some (_, best) when best <= p.tick -> acc
          | _ -> Some (n, p.tick))
        t.pages None
    in
    match victim with
    | Some (n, _) -> Hashtbl.remove t.pages n
    | None -> ()
  done

(* Roll the fault dice before a physical read. Only the read-side kinds
   are considered here; write-side kinds (bit flips, torn writes) are
   applied to the medium by [Store_faulty]. *)
let maybe_inject t ~len =
  match t.faults with
  | None -> ()
  | Some (spec, rng) ->
      if Random.State.float rng 1.0 < spec.Apt_store.f_rate then begin
        let kinds =
          List.filter
            (function
              | Apt_store.Transient_io | Apt_store.Short_read -> true
              | _ -> false)
            spec.Apt_store.f_kinds
        in
        match List.nth kinds (Random.State.int rng (List.length kinds)) with
        | Apt_store.Transient_io -> Apt_error.transient "injected EIO"
        | Apt_store.Short_read ->
            (* the device really moved some bytes before giving up *)
            let got = if len <= 1 then 0 else Random.State.int rng len in
            (try ignore (really_input_string t.ic got) with End_of_file -> ());
            Apt_error.transient
              (Printf.sprintf "injected short read (%d of %d bytes)" got len)
        | _ -> ()
      end

let quarantine_range t ~start ~stop =
  let first = start / t.page_size
  and last = if stop > start then (stop - 1) / t.page_size else start / t.page_size in
  for n = first to last do
    if not (Hashtbl.mem t.quarantined n) then begin
      Hashtbl.replace t.quarantined n ();
      tally
        (fun s ->
          Io_stats.bump s.Io_stats.pages_quarantined (1))
        t
    end
  done

let check_quarantine t ~start ~stop =
  let first = start / t.page_size
  and last = if stop > start then (stop - 1) / t.page_size else start / t.page_size in
  for n = first to last do
    if Hashtbl.mem t.quarantined n then
      Apt_error.raise_
        (Apt_error.Exhausted_retries
           {
             path = Some t.path;
             attempts = max_attempts;
             detail = Printf.sprintf "page %d is quarantined" n;
           })
  done

(* One physical transfer of the absolute byte range [start, stop), under
   the bounded retry policy. *)
let transfer t ~start ~stop =
  check_quarantine t ~start ~stop;
  let len = stop - start in
  let attempt () =
    maybe_inject t ~len;
    if start <> t.phys then begin
      tally (fun s -> Io_stats.bump s.Io_stats.seeks 1) t;
      seek_in t.ic start
    end;
    let run =
      try really_input_string t.ic len
      with End_of_file ->
        Apt_error.raise_
          (Apt_error.Truncated_file
             {
               path = Some t.path;
               offset = start;
               detail = "page read past end of file";
             })
    in
    t.phys <- stop;
    tally (fun s -> Io_stats.bump s.Io_stats.bytes_read len) t;
    run
  in
  let backoff n =
    (* a spin proportional to the attempt number stands in for the
       device settling; nothing here can block the single-threaded
       evaluator *)
    for _ = 1 to n * 50 do ignore (Sys.opaque_identity n) done
  in
  let rec go n =
    try attempt ()
    with Apt_error.Transient msg ->
      (* the head position is unknown after a failed read *)
      t.phys <- -1;
      if n >= max_attempts then begin
        quarantine_range t ~start ~stop;
        Apt_error.raise_
          (Apt_error.Exhausted_retries
             { path = Some t.path; attempts = n; detail = msg })
      end
      else begin
        tally (fun s -> Io_stats.bump s.Io_stats.retries 1) t;
        backoff n;
        go (n + 1)
      end
  in
  let m = Lg_support.Metrics.ambient () in
  if not (Lg_support.Metrics.enabled m) then go 1
  else begin
    (* how long a frame read that hit transient faults took to recover —
       the retry-latency distribution of the resilience layer *)
    let retries_before =
      match t.stats with Some s -> Io_stats.get s.Io_stats.retries | None -> 0
    in
    let t0 = Unix.gettimeofday () in
    let run = go 1 in
    (match t.stats with
    | Some s when Io_stats.get s.Io_stats.retries > retries_before ->
        Lg_support.Metrics.observe m
          ~buckets:[ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0 ]
          "apt.retry_recovery_seconds"
          (Unix.gettimeofday () -. t0)
    | _ -> ());
    run
  end

let pread t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.size then
    Apt_error.raise_
      (Apt_error.Truncated_file
         { path = Some t.path; offset = pos; detail = "read past end of file" });
  if len = 0 then "" else transfer t ~start:pos ~stop:(pos + len)

let touch t p =
  t.clock <- t.clock + 1;
  p.tick <- t.clock;
  if p.prefetched then begin
    p.prefetched <- false;
    tally (fun s -> Io_stats.bump s.Io_stats.prefetch_hits 1) t
  end

(* The low edge a [`Low]-widened fetch of page [n] may reach: the file
   signature on page 0 was already read raw by the sniff. *)
let low_edge t n = if n = 0 then min t.data_start (page_len t 0) else 0

(* Serve bytes [lo, hi) of page [n]'s local coordinates. On a miss the
   fetch is widened to the end of the page on the [want] side (those
   bytes carry the rest of the record the caller is decoding); the other
   side stays unread until the scan actually gets there, at which point
   the segment is extended in place. Sequential misses additionally pull
   whole read-ahead pages in the scan direction. *)
let page_slice t n ~lo ~hi ~(want : [ `Low | `High ]) =
  let plen = page_len t n in
  let start_of n = n * t.page_size in
  let dir =
    if n = t.last_page + 1 then 1 else if n = t.last_page - 1 then -1 else 0
  in
  let sequential = dir <> 0 in
  let dir = if dir <> 0 then dir else t.last_dir in
  t.last_page <- n;
  if dir <> 0 then t.last_dir <- dir;
  let serve p = String.sub p.data (lo - p.base) (hi - lo) in
  match Hashtbl.find_opt t.pages n with
  | Some p when p.base <= lo && hi <= p.base + String.length p.data ->
      touch t p;
      tally (fun s -> Io_stats.bump s.Io_stats.pool_hits 1) t;
      serve p
  | Some p ->
      (* held segment doesn't cover the request: extend it *)
      tally (fun s -> Io_stats.bump s.Io_stats.pool_misses 1) t;
      let dlo, dhi =
        match want with `Low -> (low_edge t n, hi) | `High -> (lo, plen)
      in
      let dlo = min dlo p.base and dhi = max dhi (p.base + String.length p.data) in
      if dlo < p.base then begin
        let prefix = transfer t ~start:(start_of n + dlo) ~stop:(start_of n + p.base) in
        p.data <- prefix ^ p.data;
        p.base <- dlo
      end;
      let pend = p.base + String.length p.data in
      if dhi > pend then
        p.data <- p.data ^ transfer t ~start:(start_of n + pend) ~stop:(start_of n + dhi);
      touch t p;
      serve p
  | None ->
      tally (fun s -> Io_stats.bump s.Io_stats.pool_misses 1) t;
      let dlo, dhi =
        match want with `Low -> (low_edge t n, hi) | `High -> (lo, plen)
      in
      (* read-ahead: whole neighbouring pages in the scan direction, in
         the same physical transfer, stopping at any page already held *)
      let ahead = if sequential then min t.prefetch (t.capacity - 1) else 0 in
      let last_file_page = if t.size = 0 then -1 else (t.size - 1) / t.page_size in
      let lo_page, hi_page =
        if dir > 0 then begin
          let h = ref n in
          while
            !h < min last_file_page (n + ahead)
            && not (Hashtbl.mem t.pages (!h + 1))
          do
            incr h
          done;
          (n, !h)
        end
        else if dir < 0 then begin
          let l = ref n in
          while !l > max 0 (n - ahead) && not (Hashtbl.mem t.pages (!l - 1)) do
            decr l
          done;
          (!l, n)
        end
        else (n, n)
      in
      let start =
        if lo_page < n then start_of lo_page + low_edge t lo_page
        else start_of n + dlo
      in
      let stop = if hi_page > n then start_of hi_page + page_len t hi_page else start_of n + dhi in
      let run = transfer t ~start ~stop in
      tally
        (fun s -> Io_stats.bump s.Io_stats.pages_read (hi_page - lo_page + 1))
        t;
      for m = lo_page to hi_page do
        evict_to_capacity t;
        t.clock <- t.clock + 1;
        let m_lo = max start (start_of m) and m_hi = min stop (start_of m + page_len t m) in
        Hashtbl.replace t.pages m
          {
            base = m_lo - start_of m;
            data = String.sub run (m_lo - start) (m_hi - m_lo);
            tick = t.clock;
            prefetched = m <> n;
          }
      done;
      (* high-water page residency of the buffer pool, for manifests *)
      let mreg = Lg_support.Metrics.ambient () in
      if Lg_support.Metrics.enabled mreg then
        Lg_support.Metrics.set_max mreg "apt.pool_resident_pages"
          (float_of_int (Hashtbl.length t.pages));
      let p = Hashtbl.find t.pages n in
      touch t p;
      p.prefetched <- false;
      serve p

let read t ~pos ~len ~want =
  if pos < 0 || len < 0 || pos + len > t.size then
    Apt_error.raise_
      (Apt_error.Truncated_file
         { path = Some t.path; offset = pos; detail = "read past end of file" });
  if len = 0 then ""
  else begin
    let first = pos / t.page_size and last = (pos + len - 1) / t.page_size in
    if first = last then
      page_slice t first ~lo:(pos - (first * t.page_size))
        ~hi:(pos + len - (first * t.page_size)) ~want
    else begin
      let buf = Buffer.create len in
      Buffer.add_string buf
        (page_slice t first ~lo:(pos - (first * t.page_size))
           ~hi:(page_len t first) ~want);
      (* Interior pages lie entirely inside this one record, so pooling
         them buys nothing — a record wider than the pool would evict the
         very boundary pages the scan is about to revisit. Absent interior
         pages are fetched raw, in contiguous runs, and never pooled. *)
      let n = ref (first + 1) in
      while !n < last do
        match Hashtbl.find_opt t.pages !n with
        | Some _ ->
            Buffer.add_string buf
              (page_slice t !n ~lo:0 ~hi:(page_len t !n) ~want);
            incr n
        | None ->
            let hi = ref !n in
            while !hi + 1 < last && not (Hashtbl.mem t.pages (!hi + 1)) do
              incr hi
            done;
            tally
              (fun s ->
                Io_stats.bump s.Io_stats.pool_misses ((!hi - !n + 1));
                Io_stats.bump s.Io_stats.pages_read ((!hi - !n + 1)))
              t;
            Buffer.add_string buf
              (transfer t ~start:(!n * t.page_size)
                 ~stop:((!hi * t.page_size) + page_len t !hi));
            n := !hi + 1
      done;
      Buffer.add_string buf
        (page_slice t last ~lo:0 ~hi:(pos + len - (last * t.page_size)) ~want);
      if Buffer.length buf <> len then
        Apt_error.raise_
          (Apt_error.Truncated_file
             {
               path = Some t.path;
               offset = pos;
               detail = "page assembly came up short";
             });
      Buffer.contents buf
    end
  end

(* ---- page-buffered append writer ----

   Crash-safe: the stream goes into [path ^ ".part"] and is atomically
   renamed over [path] on close, so a failure mid-write never leaves a
   partial file at the final path. *)

type w = {
  out : Apt_store.Atomic_out.ch;
  w_page_size : int;
  w_stats : Io_stats.t option;
  buf : Buffer.t;
  mutable written : int;
}

let create_writer ?stats ?(durable = false) ~page_size ~path () =
  if page_size <= 0 then invalid_arg "Store_pager.create_writer: page_size";
  {
    out = Apt_store.Atomic_out.create ~durable path;
    w_page_size = page_size;
    w_stats = stats;
    buf = Buffer.create (2 * page_size);
    written = 0;
  }

let tally_w f w = match w.w_stats with Some s -> f s | None -> ()

let flush_pages w ~all =
  let len = Buffer.length w.buf in
  let whole = len / w.w_page_size * w.w_page_size in
  let flushed = if all then len else whole in
  if flushed > 0 then begin
    let s = Buffer.contents w.buf in
    output_substring (Apt_store.Atomic_out.channel w.out) s 0 flushed;
    Buffer.clear w.buf;
    Buffer.add_substring w.buf s flushed (len - flushed);
    w.written <- w.written + flushed;
    tally_w
      (fun st ->
        Io_stats.bump st.Io_stats.bytes_written flushed;
        Io_stats.bump st.Io_stats.pages_written
          ((flushed + w.w_page_size - 1) / w.w_page_size))
      w
  end

let append w s =
  Buffer.add_string w.buf s;
  if Buffer.length w.buf >= w.w_page_size then flush_pages w ~all:false

let close_writer w =
  flush_pages w ~all:true;
  Apt_store.Atomic_out.commit w.out;
  w.written
