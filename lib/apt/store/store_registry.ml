(* The store registry: name -> configured store. The builtin table is
   populated here (not by side effects in the implementation modules, so
   selective linking can never lose a backend); [register] is the
   extension point for out-of-tree stores, used e.g. by the test suite to
   plug a custom [APT_STORE] module in via [Apt_store.pack]. *)

type entry = {
  description : string;
  make : Apt_store.config -> Apt_store.t;
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 8

let register ~name ~description make =
  Hashtbl.replace table name { description; make }

let () =
  register ~name:"mem"
    ~description:"in-memory buffer, whole-record framing (the paper's virtual-memory answer)"
    (fun c ->
      Store_legacy.mem
        ~format:(if c.Apt_store.legacy_format then Apt_store.Legacy else Apt_store.Framed_v1)
        ());
  register ~name:"disk"
    ~description:"unbuffered temp file, whole-record framing (the seed default)"
    Store_legacy.disk;
  register ~name:"paged"
    ~description:"paged temp file with an LRU buffer pool (same byte format as disk)"
    (fun c -> Store_paged.make c);
  register ~name:"prefetch"
    ~description:"paged store reading ahead N pages on sequential access"
    Store_prefetch.make;
  register ~name:"zip"
    ~description:"front-coded block compression layered over the disk store"
    (fun c -> Store_zip.layer ~name:"zip" c (Store_legacy.disk c));
  register ~name:"paged+zip"
    ~description:"front-coded block compression layered over the paged store"
    (fun c -> Store_zip.layer ~name:"paged+zip" c (Store_paged.make c));
  register ~name:"faulty"
    ~description:
      "deterministic fault injection (--apt-faults seed:rate:kinds) layered \
       over the prefetch store"
    (fun c -> Store_faulty.layer ~name:"faulty" c (Store_prefetch.make c))

let names () = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])

let description name =
  match Hashtbl.find_opt table name with
  | Some e -> Some e.description
  | None -> None

let find ?(config = Apt_store.default_config) name =
  match Hashtbl.find_opt table name with
  | Some e -> e.make config
  | None ->
      failwith
        (Printf.sprintf "unknown APT store %S (registered: %s)" name
           (String.concat ", " (names ())))
