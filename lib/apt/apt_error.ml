(* The typed error channel for the APT storage and evaluation stack.

   Every integrity failure the store layer can detect — a checksum
   mismatch, a short file, an unknown on-medium version, an I/O fault
   that survived the retry policy, an exhausted evaluator budget — is
   reported as a value of [t] carried by the [Error] exception, never as
   a bare [Failure] string. Callers either match on the payload (the
   salvage scanner, the fuzz harness) or render it through
   [Lg_support.Diag] and exit with the error's stable code (the CLI). *)

open Lg_support

type t =
  | Corrupt_record of { path : string option; offset : int; detail : string }
  | Truncated_file of { path : string option; offset : int; detail : string }
  | Version_mismatch of { path : string option; found : string }
  | Exhausted_retries of { path : string option; attempts : int; detail : string }
  | Resource_limit of { what : string; limit : int; detail : string }

exception Error of t

(* Transient, retryable I/O conditions (the moral equivalent of EIO or a
   short read(2)): raised below the retry layer, absorbed by it, and
   promoted to [Exhausted_retries] only when the retry budget runs out.
   Code above the store layer should never observe this exception. *)
exception Transient of string

let raise_ e = raise (Error e)
let transient msg = raise (Transient msg)

(* Stable process exit codes, pinned by test_cli.ml: tools that wrap the
   CLI (CI, build systems) dispatch on them, so they must never be
   renumbered — only extended. *)
let exit_code = function
  | Corrupt_record _ -> 40
  | Truncated_file _ -> 41
  | Version_mismatch _ -> 42
  | Exhausted_retries _ -> 43
  | Resource_limit _ -> 44

let in_file = function
  | Some path -> Printf.sprintf " in %s" path
  | None -> ""

let to_string = function
  | Corrupt_record { path; offset; detail } ->
      Printf.sprintf "corrupt APT record%s at offset %d: %s" (in_file path)
        offset detail
  | Truncated_file { path; offset; detail } ->
      Printf.sprintf "truncated APT file%s at offset %d: %s" (in_file path)
        offset detail
  | Version_mismatch { path; found } ->
      Printf.sprintf
        "APT version mismatch%s: file signature %S is not a format this \
         build reads" (in_file path) found
  | Exhausted_retries { path; attempts; detail } ->
      Printf.sprintf "APT I/O failed%s after %d attempts: %s" (in_file path)
        attempts detail
  | Resource_limit { what; limit; detail } ->
      Printf.sprintf "evaluation exceeded the %s budget (%d): %s" what limit
        detail

let path_of = function
  | Corrupt_record { path; _ }
  | Truncated_file { path; _ }
  | Version_mismatch { path; _ }
  | Exhausted_retries { path; _ } -> path
  | Resource_limit _ -> None

let to_diag e =
  let span =
    match path_of e with
    | Some path -> Loc.span path Loc.start_pos Loc.start_pos
    | None -> Loc.dummy
  in
  { Diag.severity = Diag.Error; span; message = to_string e }

let add_to_diag c e = Diag.add c (to_diag e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Apt_error.Error: " ^ to_string e)
    | Transient msg -> Some ("Apt_error.Transient: " ^ msg)
    | _ -> None)
