let write_postfix_ltr w emit tree =
  Tree.iter_postfix_ltr (fun t -> Aptfile.write w (emit t)) tree

let write_prefix_ltr w emit tree =
  Tree.iter_prefix_ltr (fun t -> Aptfile.write w (emit t)) tree

let read_tree reader ~order ~arity ~rebuild =
  let next () =
    match Aptfile.read_next reader with
    | Some node -> node
    | None ->
        Apt_error.raise_
          (Apt_error.Truncated_file
             {
               path = None;
               offset = -1;
               detail = "APT stream ended before the tree was complete";
             })
  in
  let rec read_node () =
    let node = next () in
    let n = arity node in
    let children = List.init n (fun _ -> read_node ()) in
    let children =
      match order with `Prefix_ltr -> children | `Prefix_rtl -> List.rev children
    in
    rebuild node children
  in
  read_node ()

let default_node (t : Tree.t) =
  if t.Tree.prod = Node.leaf_prod then
    Node.leaf ~sym:t.Tree.sym ~attrs:t.Tree.leaf_attrs
  else Node.interior ~prod:t.Tree.prod ~sym:t.Tree.sym ~attrs:[||]

let default_rebuild (node : Node.t) children =
  if Node.is_leaf node then Tree.leaf ~sym:node.Node.sym ~attrs:node.Node.attrs
  else Tree.interior ~prod:node.Node.prod ~sym:node.Node.sym ~children
