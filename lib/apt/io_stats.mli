(** I/O accounting for the intermediate APT files.

    LINGUIST-86's operating characteristics hinge on the observation that
    the generated evaluators are I/O bound; every byte and record moved
    through the APT files is tallied here so the benchmark harness can
    attribute time to transfer volume (experiments E4, E6, F2).

    Byte counters record traffic against the backing medium and are
    maintained by the store implementations ({!Apt_store}); record
    counters are maintained by the {!Aptfile} façade. Page-level counters
    are populated only by the paged/prefetching stores; raw-byte counters
    only by compressing store layers. *)

type t = {
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable records_read : int;
  mutable records_written : int;
  mutable files_created : int;
  mutable pages_read : int;  (** pages fetched from the medium *)
  mutable pages_written : int;  (** pages flushed to the medium *)
  mutable pool_hits : int;  (** page requests served from the buffer pool *)
  mutable pool_misses : int;  (** page requests that went to the medium *)
  mutable prefetch_hits : int;  (** pool hits on pages loaded by read-ahead *)
  mutable seeks : int;  (** non-contiguous repositionings of the medium *)
  mutable retries : int;
      (** physical reads repeated after a transient I/O fault
          ({!Store_pager}'s bounded retry-with-backoff policy) *)
  mutable pages_quarantined : int;
      (** pages given up on after the retry budget was exhausted;
          further reads of a quarantined page fail immediately *)
  mutable raw_bytes_read : int;
      (** bytes the base store would have moved uncompressed (payload +
          framing) for the records delivered *)
  mutable raw_bytes_written : int;
      (** bytes the base store would have moved uncompressed (payload +
          framing) for the records accepted *)
}

val create : unit -> t
val reset : t -> unit

val add : into:t -> t -> unit
(** Field-wise accumulation; covers every counter. *)

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order. [add],
    [reset], [to_json] and this function are all derived from one internal
    field table, so they cannot drift apart when counters are added; the
    list is also how counters are attached to trace spans
    ({!Lg_support.Trace}). *)

val set_field : t -> string -> int -> unit
(** Set one counter by name (the write-side of {!fields}; used by tests
    and decoders). @raise Invalid_argument on an unknown name. *)

val total_bytes : t -> int
val total_pages : t -> int

val compression_ratio : t -> float option
(** [raw_bytes_written / bytes_written] when a compressing layer ran,
    [None] otherwise. Above 1.0 means the store shrank the stream. *)

val modeled_seconds : t -> bytes_per_second:float -> float
(** Transfer time under a sequential-device cost model — the floppy/rigid
    disk of the paper's 8086 host. *)

val modeled_seconds_seek :
  t -> bytes_per_second:float -> seek_seconds:float -> float
(** Like {!modeled_seconds} but charging each recorded seek separately —
    distinguishes the per-record seeking of the legacy backward reader
    from a paged store's few page-boundary seeks. *)

val pp : Format.formatter -> t -> unit
(** Prints every populated counter group. *)

val to_json_value : t -> Lg_support.Json_out.t
(** One flat JSON object with every counter plus the derived
    [compression_ratio]; embedded in the bench harness's
    [BENCH_apt.json] and in run manifests. *)

val to_json : t -> string
(** [Json_out.to_string (to_json_value t)]. *)

val publish : ?prefix:string -> t -> Lg_support.Metrics.t -> unit
(** Accumulate every non-zero counter into a metrics registry as
    [prefix ^ name] (default prefix ["apt."]) — the registry view of the
    same internal field table, so new counters reach manifests and the
    bench regression gate automatically. *)
