(** I/O accounting for the intermediate APT files.

    LINGUIST-86's operating characteristics hinge on the observation that
    the generated evaluators are I/O bound; every byte and record moved
    through the APT files is tallied here so the benchmark harness can
    attribute time to transfer volume (experiments E4, E6, F2).

    Byte counters record traffic against the backing medium and are
    maintained by the store implementations ({!Apt_store}); record
    counters are maintained by the {!Aptfile} façade. Page-level counters
    are populated only by the paged/prefetching stores; raw-byte counters
    only by compressing store layers.

    Every counter is an [Atomic.t]: one tally may be fed by store layers
    running on several domains at once (the batch-evaluation pool), and
    increments must not be lost under that race. Producers bump fields
    with {!bump}; consumers read them with [Atomic.get] (or take the
    whole row via {!fields}). Aggregate readers ({!fields}, {!add},
    {!to_json_value}) are {e per-field} atomic — a snapshot taken while
    another domain is mid-update can mix old and new counters, which is
    fine for telemetry and exact once the producers have quiesced. *)

type t = {
  bytes_read : int Atomic.t;
  bytes_written : int Atomic.t;
  records_read : int Atomic.t;
  records_written : int Atomic.t;
  files_created : int Atomic.t;
  pages_read : int Atomic.t;  (** pages fetched from the medium *)
  pages_written : int Atomic.t;  (** pages flushed to the medium *)
  pool_hits : int Atomic.t;  (** page requests served from the buffer pool *)
  pool_misses : int Atomic.t;  (** page requests that went to the medium *)
  prefetch_hits : int Atomic.t;
      (** pool hits on pages loaded by read-ahead *)
  seeks : int Atomic.t;  (** non-contiguous repositionings of the medium *)
  retries : int Atomic.t;
      (** physical reads repeated after a transient I/O fault
          ({!Store_pager}'s bounded retry-with-backoff policy) *)
  pages_quarantined : int Atomic.t;
      (** pages given up on after the retry budget was exhausted;
          further reads of a quarantined page fail immediately *)
  raw_bytes_read : int Atomic.t;
      (** bytes the base store would have moved uncompressed (payload +
          framing) for the records delivered *)
  raw_bytes_written : int Atomic.t;
      (** bytes the base store would have moved uncompressed (payload +
          framing) for the records accepted *)
}

val create : unit -> t
val reset : t -> unit

val bump : int Atomic.t -> int -> unit
(** [bump field n] atomically adds [n] — the producers' increment,
    e.g. [Io_stats.bump s.bytes_read len]. *)

val get : int Atomic.t -> int
(** [Atomic.get]; reads one counter, e.g. [Io_stats.get s.retries]. *)

val add : into:t -> t -> unit
(** Field-wise accumulation; covers every counter. *)

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order. [add],
    [reset], [to_json] and this function are all derived from one internal
    field table, so they cannot drift apart when counters are added; the
    list is also how counters are attached to trace spans
    ({!Lg_support.Trace}). *)

val set_field : t -> string -> int -> unit
(** Set one counter by name (the write-side of {!fields}; used by tests
    and decoders). @raise Invalid_argument on an unknown name. *)

val total_bytes : t -> int
val total_pages : t -> int

val compression_ratio : t -> float option
(** [raw_bytes_written / bytes_written] when a compressing layer ran,
    [None] otherwise. Above 1.0 means the store shrank the stream. *)

val modeled_seconds : t -> bytes_per_second:float -> float
(** Transfer time under a sequential-device cost model — the floppy/rigid
    disk of the paper's 8086 host. *)

val modeled_seconds_seek :
  t -> bytes_per_second:float -> seek_seconds:float -> float
(** Like {!modeled_seconds} but charging each recorded seek separately —
    distinguishes the per-record seeking of the legacy backward reader
    from a paged store's few page-boundary seeks. *)

val pp : Format.formatter -> t -> unit
(** Prints every populated counter group. *)

val to_json_value : t -> Lg_support.Json_out.t
(** One flat JSON object with every counter plus the derived
    [compression_ratio]; embedded in the bench harness's
    [BENCH_apt.json] and in run manifests. *)

val to_json : t -> string
(** [Json_out.to_string (to_json_value t)]. *)

val publish : ?prefix:string -> t -> Lg_support.Metrics.t -> unit
(** Accumulate every non-zero counter into a metrics registry as
    [prefix ^ name] (default prefix ["apt."]) — the registry view of the
    same internal field table, so new counters reach manifests and the
    bench regression gate automatically. *)
