(** Offline integrity scan and recovery for APT files (the CLI's
    [apt-fsck]).

    {!scan} walks a file through the same {!Apt_store.Record_codec} the
    stores read with, reporting per-record integrity with byte offsets
    and stopping at the first failure; {!recover} rewrites the longest
    valid prefix — reframed and freshly checksummed — to a new file. *)

type record_info = { r_offset : int; r_len : int  (** payload bytes *) }

type report = {
  sv_path : string;
  sv_size : int;
  sv_format : Apt_store.format;
  sv_records : record_info list;  (** valid records, in file order *)
  sv_issue : Apt_error.t option;  (** first integrity failure, if any *)
  sv_valid_bytes : int;  (** longest valid prefix of the file *)
}

val is_clean : report -> bool

val scan : string -> report
(** Never raises on damaged content: integrity failures land in
    [sv_issue]. (I/O errors opening the file still raise [Sys_error].) *)

val recover : ?format:Apt_store.format -> report -> out:string -> int
(** Rewrite the valid prefix to [out] (atomically), defaulting to the
    framed format — recovery therefore also migrates legacy files.
    Returns the number of records recovered. *)

val format_name : Apt_store.format -> string

val pp_report : Format.formatter -> report -> unit
(** Human-readable per-record listing with offsets, then a summary. *)
