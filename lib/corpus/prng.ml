(* A self-contained splitmix64 so corpus generation is bit-stable across
   OCaml releases — [Random.State]'s sequence is not part of the stdlib's
   compatibility contract, and committed corpus baselines gate on the
   exact grammars these streams produce. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* the top bits are the well-mixed ones; a modulo bias of < 2^-50 for
     the small bounds used here is irrelevant *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 2) (Int64.of_int bound))

let fn t bound = int t bound

let derive seed salt =
  let t = create seed in
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int (salt + 1)) golden);
  Int64.to_int (Int64.shift_right_logical (next t) 2)
