(** Seeded generation of large, always-evaluable attribute grammars.

    The constructive sibling of {!Ag_gen}: where that generator throws
    random dependencies at the checker and accepts a discard rate, this
    one builds grammars guaranteed to pass the evaluability test with a
    pass count pinned to [config.passes], and to build conflict-free
    LALR(1) tables — at an order of magnitude past [linguist.ag]. That
    guarantee is what makes a {e deterministic} corpus possible: a
    seed + config names an exact fleet of grammars, inputs, and jobs.

    Construction, briefly (details atop [corpus_gen.ml]): productions
    lead with per-nonterminal distinct marker terminals (LL(1), hence
    LALR(1) without conflicts); attributes come in [passes] stratified
    families [Ip]/[Sp] whose dependencies are direction-consistent with
    pass [p] of the declared strategy, with forced sibling and
    cross-family references pinning the pass count exactly. *)

type strategy = Bottom_up | Recursive_descent

type config = {
  nonterminals : int;  (** chain nonterminals besides the root *)
  terminals : int;
  passes : int;  (** attribute families = alternating passes *)
  fanout : int;  (** extra rhs symbols per recursive production *)
  extra_prods : int;  (** extra productions per nonterminal (max) *)
  expr_depth : int;
  strategy : strategy;
}

type profile = Small | Medium | Large | Xl

val config_of_profile : profile -> config
val profile_of_string : string -> profile option
val profile_name : profile -> string
val profile_names : (string * profile) list

type grammar = {
  g_name : string;
  g_seed : int;
  g_config : config;
  g_source : string;  (** complete AG source text *)
}

val generate : ?name:string -> config -> seed:int -> grammar
(** Deterministic: same [name], [config] and [seed] yield byte-identical
    source on any machine.
    @raise Invalid_argument on nonsensical configs (notably
    [terminals < extra_prods + 2], which marker distinctness needs). *)

type built = {
  b_grammar : grammar;
  b_artifact : Linguist.Driver.artifact;
  b_cfg : Lg_grammar.Cfg.t;
  b_analysis : Lg_grammar.Analysis.t;
}

val build : grammar -> (built, string) result
(** Run the real front end ({!Linguist.Driver.process}) on the generated
    text. [Error] carries the diagnostic listing — for a generator bug,
    since corpus grammars are evaluable by construction. *)

val build_exn : grammar -> built

val sentence_tokens : built -> seed:int -> size:int -> int list
(** Terminal indices of a seeded {!Lg_grammar.Sentence_gen} derivation. *)

val sentence : built -> seed:int -> size:int -> string
(** The same derivation rendered as scanner-ready input text: terminal
    names, whitespace-separated (the symbolic scanner of
    {!Linguist.Translator.of_source} tokenizes exactly these). *)

type description = {
  d_name : string;
  d_seed : int;
  d_strategy : string;
  d_terminals : int;
  d_nonterminals : int;
  d_limbs : int;
  d_symbols : int;
  d_attrs : int;
  d_productions : int;
  d_rules : int;
  d_copy_rules : int;
  d_occurrences : int;
  d_passes : int;
  d_lalr_states : int option;  (** only when [describe ~lalr:true] *)
  d_lalr_conflicts : int option;  (** unresolved; 0 for corpus grammars *)
}

val describe : ?lalr:bool -> built -> description
(** Size and shape counters ([lalr] defaults to [false]: table
    construction is the expensive part and xl-profile describes skip
    it). *)
