(** A deterministic splitmix64 stream.

    Corpus generation must be bit-stable across machines and OCaml
    releases (committed baselines gate on the exact corpus a seed
    produces), so it never touches [Random] — every random choice draws
    from one of these streams. *)

type t

val create : int -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val fn : t -> int -> int
(** [fn t] partially applied is the [int -> int] closure shape that
    {!Ag_gen.generate} and {!Lg_grammar.Sentence_gen} consume. *)

val derive : int -> int -> int
(** [derive seed salt]: a stable nonnegative sub-seed, so one spec seed
    fans out into independent per-grammar and per-input streams. *)
