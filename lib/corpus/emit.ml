(* Corpus materialization: grammars, input fleets, and a multi-tenant
   jobfile, laid out under one directory.

   Everything in the layout is derived from the spec seed through
   {!Prng.derive} sub-streams, and every path inside [jobs.json] is
   relative to the corpus root — two [write]s of the same spec are
   byte-identical file trees wherever they land, which is what the
   determinism test and the committed bench baseline lean on. Run the
   jobfile with the corpus root as working directory (jobfile paths
   resolve against the process cwd). *)

open Lg_server

type spec = {
  s_seed : int;
  s_grammars : int;
  s_profile : Corpus_gen.profile;
  s_inputs : int;  (** inputs per grammar *)
  s_input_size : int;  (** sentence size budget, tokens *)
  s_fault_every : int;  (** 0 = none; else every nth eligible job *)
}

let default =
  {
    s_seed = 1;
    s_grammars = 20;
    s_profile = Corpus_gen.Small;
    s_inputs = 10;
    s_input_size = 40;
    s_fault_every = 7;
  }

(* Per-grammar shape variation: the corpus should exercise contention
   across genuinely different tenants — strategies of both directions,
   pass counts from 1 up to the profile's, and staggered sizes — not
   twenty reseedings of one shape. *)
let vary (base : Corpus_gen.config) i =
  let flip = function
    | Corpus_gen.Bottom_up -> Corpus_gen.Recursive_descent
    | Corpus_gen.Recursive_descent -> Corpus_gen.Bottom_up
  in
  {
    base with
    Corpus_gen.nonterminals =
      base.Corpus_gen.nonterminals
      + i mod 3 * max 1 (base.Corpus_gen.nonterminals / 6);
    terminals = base.Corpus_gen.terminals + (i mod 2 * 2);
    passes = 1 + ((base.Corpus_gen.passes - 1 + i) mod base.Corpus_gen.passes);
    strategy =
      (if i mod 2 = 0 then base.Corpus_gen.strategy
       else flip base.Corpus_gen.strategy);
  }

let grammar_name i = Printf.sprintf "g%03d" i

let grammar_rel i = Filename.concat "grammars" (grammar_name i ^ ".ag")

let input_rel i k =
  Filename.concat
    (Filename.concat "inputs" (grammar_name i))
    (Printf.sprintf "i%02d.txt" k)

let grammars spec =
  let base = Corpus_gen.config_of_profile spec.s_profile in
  List.init spec.s_grammars (fun i ->
      Corpus_gen.generate ~name:(grammar_name i) (vary base i)
        ~seed:(Prng.derive spec.s_seed (2 * i)))

(* Input sub-seeds salted away from the grammar stream. *)
let input_seed spec i k = Prng.derive spec.s_seed (100_000 + (i * 1000) + k)

let stores = [| "mem"; "paged"; "prefetch" |]

let jobs spec =
  let checks =
    List.concat
      (List.init spec.s_grammars (fun i ->
           Jobfile.make
             ~id:("check-" ^ grammar_name i)
             ~op:Jobfile.Check ~file:(grammar_rel i) ()
           ::
           (if i mod 5 = 0 then
              [
                Jobfile.make
                  ~id:("analyze-" ^ grammar_name i)
                  ~op:Jobfile.Analyze ~file:(grammar_rel i) ();
              ]
            else [])))
  in
  let translations = ref [] in
  let n_eligible = ref 0 in
  (* inputs outer, grammars inner: adjacent jobs hit different tenants,
     so a pooled run contends on the session cache instead of handing
     each worker a private grammar *)
  for k = 0 to spec.s_inputs - 1 do
    for i = 0 to spec.s_grammars - 1 do
      let tenant = Jobfile.Grammar (grammar_rel i) in
      let store = stores.((i + k) mod Array.length stores) in
      let faulty =
        spec.s_fault_every > 0
        && (not (String.equal store "mem"))
        && (incr n_eligible;
            !n_eligible mod spec.s_fault_every = 0)
      in
      let faults =
        if faulty then
          Some
            {
              Lg_apt.Apt_store.f_seed = Prng.derive spec.s_seed (500_000 + !n_eligible);
              f_rate = 0.05;
              (* read-side only: transient faults are absorbed by pager
                 retries, so outputs stay deterministic *)
              f_kinds = [ Lg_apt.Apt_store.Transient_io ];
            }
        else None
      in
      let job =
        if (i + k) mod 3 = 2 then
          Jobfile.make
            ~id:(Printf.sprintf "u-%s-i%02d" (grammar_name i) k)
            ~doc:(grammar_name i ^ ".doc")
            ~store ?faults
            ~op:(Jobfile.Update tenant)
            ~file:(input_rel i k) ()
        else
          Jobfile.make
            ~id:(Printf.sprintf "t-%s-i%02d" (grammar_name i) k)
            ~store ?faults
            ~op:(Jobfile.Translate tenant)
            ~file:(input_rel i k) ()
      in
      translations := job :: !translations
    done
  done;
  checks @ List.rev !translations

type corpus = {
  c_dir : string;
  c_spec : spec;
  c_built : Corpus_gen.built list;
  c_jobs : Jobfile.job list;
  c_jobfile : string;  (** absolute path of [jobs.json] *)
}

let mkdir_p dir =
  let rec mk d =
    if not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let write ~dir spec =
  mkdir_p (Filename.concat dir "grammars");
  let built =
    List.mapi
      (fun i g ->
        write_file (Filename.concat dir (grammar_rel i)) g.Corpus_gen.g_source;
        let b = Corpus_gen.build_exn g in
        mkdir_p (Filename.concat dir (Filename.dirname (input_rel i 0)));
        for k = 0 to spec.s_inputs - 1 do
          write_file
            (Filename.concat dir (input_rel i k))
            (Corpus_gen.sentence b ~seed:(input_seed spec i k)
               ~size:spec.s_input_size)
        done;
        b)
      (grammars spec)
  in
  let jobs = jobs spec in
  let jobfile = Filename.concat dir "jobs.json" in
  write_file jobfile (Jobfile.to_string ~pretty:true jobs);
  { c_dir = dir; c_spec = spec; c_built = built; c_jobs = jobs; c_jobfile = jobfile }
