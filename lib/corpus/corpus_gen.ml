(* Scaled attribute-grammar generation, evaluable by construction.

   Where Ag_gen throws random dependencies at the checker and lets the
   evaluability test discard what it must, this generator builds
   grammars that are guaranteed to pass it, at any size — that is what
   makes a deterministic corpus possible (a discard rate would make
   "20 grammars" seed-dependent).

   Phrase structure: every production of a nonterminal starts with a
   marker terminal distinct within that nonterminal's alternatives, and
   no production is nullable — the grammar is LL(1) by construction and
   hence LALR(1) without conflicts. Every nonterminal has a
   terminal-only leaf production (productivity), and [n_i]'s chain
   production contains [n_{i+1}] (reachability); extra productions draw
   children freely, so recursion — including mutual — is allowed and
   input size is unbounded.

   Attribute structure: [passes] stratified families. Family [p] gives
   every nonterminal an inherited [Ip] and a synthesized [Sp]; its
   dependencies are direction-consistent with pass [p] of the declared
   strategy (pass 1 of [bottom_up] runs right-to-left, of
   [recursive_descent] left-to-right, alternating after that — see
   docs/LANGUAGE.md):

   - a child's [Ip] draws from the parent's [Ip], from [Sp] of siblings
     on the already-visited side for that direction, and from any
     family [q < p] value (stored by an earlier pass);
   - the parent's [Sp] draws from the children's [Sp], its own [Ip],
     and earlier families.

   Two dependencies are forced so the pass count is exactly [passes],
   not merely at most: the root production has two [n0] children whose
   [Ip] references the sibling's [Sp] (pinning family [p] to a pass of
   its direction), and, for [p > 1], a child's [S(p-1)] (pinning it
   after family [p-1]). Chain productions then propagate the pin down:
   every explicit child rule forces the parent's [Ip], and an omitted
   rule is the implicit copy [child.Ip = lhs.Ip] — the same dependency.

   Like Ag_gen, everything else about expressions is random: arithmetic
   over the legal reference pool, Max/IncrIfZero, occasional top-level
   conditionals, and implicit copy-rules where the language allows
   omission (the subsumption machinery's diet). *)

type strategy = Bottom_up | Recursive_descent

type config = {
  nonterminals : int;  (** chain nonterminals besides the root *)
  terminals : int;
  passes : int;  (** attribute families = alternating passes *)
  fanout : int;  (** extra rhs symbols per recursive production *)
  extra_prods : int;  (** extra productions per nonterminal (max) *)
  expr_depth : int;
  strategy : strategy;
}

type profile = Small | Medium | Large | Xl

let config_of_profile = function
  | Small ->
      {
        nonterminals = 6;
        terminals = 6;
        passes = 2;
        fanout = 2;
        extra_prods = 2;
        expr_depth = 2;
        strategy = Bottom_up;
      }
  | Medium ->
      {
        nonterminals = 30;
        terminals = 12;
        passes = 3;
        fanout = 3;
        extra_prods = 2;
        expr_depth = 2;
        strategy = Recursive_descent;
      }
  | Large ->
      {
        nonterminals = 120;
        terminals = 24;
        passes = 4;
        fanout = 3;
        extra_prods = 3;
        expr_depth = 2;
        strategy = Bottom_up;
      }
  | Xl ->
      {
        nonterminals = 520;
        terminals = 64;
        passes = 4;
        fanout = 3;
        extra_prods = 3;
        expr_depth = 2;
        strategy = Recursive_descent;
      }

let profile_names = [ ("small", Small); ("medium", Medium); ("large", Large); ("xl", Xl) ]

let profile_of_string s = List.assoc_opt (String.lowercase_ascii s) profile_names

let profile_name p =
  fst (List.find (fun (_, q) -> q = p) profile_names)

type grammar = {
  g_name : string;
  g_seed : int;
  g_config : config;
  g_source : string;
}

(* Symbol names are letters only ("Na".."Nz", "Naa"..): the AG language
   resolves repeated occurrences by numeric suffix with all trailing
   digits stripped, so a symbol whose own name ends in a digit could
   never be disambiguated. The capital prefix keeps any suffix clear of
   the (all-lowercase) keyword table. *)
let rec alpha i =
  let last = String.make 1 (Char.chr (Char.code 'a' + (i mod 26))) in
  if i < 26 then last else alpha ((i / 26) - 1) ^ last

type sym = T of int | N of int

let validate c =
  if c.nonterminals < 2 then invalid_arg "Corpus_gen: nonterminals < 2";
  if c.terminals < c.extra_prods + 2 then
    invalid_arg "Corpus_gen: terminals must be >= extra_prods + 2";
  if c.passes < 1 || c.passes > 8 then
    invalid_arg "Corpus_gen: passes must be in 1..8";
  if c.fanout < 1 then invalid_arg "Corpus_gen: fanout < 1"

let generate ?(name = "Corpus") config ~seed =
  validate config;
  let rng = Prng.fn (Prng.create seed) in
  let nt = config.nonterminals and tn = config.terminals in
  let p_count = config.passes in
  (* family [p] runs left-to-right iff pass [p] of the strategy does *)
  let first_l2r = config.strategy = Recursive_descent in
  let l2r p = if p mod 2 = 1 then first_l2r else not first_l2r in
  let nt_name i = "N" ^ alpha i in
  let t_name k = "T" ^ alpha k in
  (* ----- phrase structure ----- *)
  let marker_base = Array.init nt (fun _ -> rng tn) in
  let marker i j = T ((marker_base.(i) + j) mod tn) in
  let random_sym () = if rng 3 = 0 then T (rng tn) else N (rng nt) in
  let productions = ref [] in
  let add lhs rhs = productions := (lhs, rhs) :: !productions in
  add `Root [ T (rng tn); N 0; N 0 ];
  for i = 0 to nt - 1 do
    add (`Nt i) [ marker i 0 ];
    if i < nt - 1 then
      add (`Nt i) (marker i 1 :: N (i + 1) :: List.init (rng config.fanout) (fun _ -> random_sym ()))
    else add (`Nt i) [ marker i 1; T (rng tn); T (rng tn) ];
    let n_extra = rng (config.extra_prods + 1) in
    for j = 0 to n_extra - 1 do
      add (`Nt i)
        (marker i (2 + j) :: List.init (1 + rng config.fanout) (fun _ -> random_sym ()))
    done
  done;
  let productions = List.rev !productions in
  (* ----- text ----- *)
  let buf = Buffer.create (1 lsl 16) in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "grammar %s;\nroot start;\nstrategy %s;\n" name
    (match config.strategy with
    | Bottom_up -> "bottom_up"
    | Recursive_descent -> "recursive_descent");
  addf "terminals\n";
  for k = 0 to tn - 1 do
    addf "  %s has intrinsic V : int;\n" (t_name k)
  done;
  addf "end\nnonterminals\n";
  let families kinds =
    String.concat ", "
      (List.concat_map
         (fun p ->
           List.filter_map
             (function
               | `Inh -> Some (Printf.sprintf "inh I%d : int" p)
               | `Syn -> Some (Printf.sprintf "syn S%d : int" p))
             kinds)
         (List.init p_count (fun p -> p + 1)))
  in
  addf "  start has %s;\n" (families [ `Syn ]);
  for i = 0 to nt - 1 do
    addf "  %s has %s;\n" (nt_name i) (families [ `Inh; `Syn ])
  done;
  addf "end\nlimbs\n";
  List.iteri (fun i _ -> addf "  Limb%d has TMP : int;\n" (i + 1)) productions;
  addf "end\nproductions\n";
  (* ----- semantics ----- *)
  let render_prod limb_idx (lhs, rhs) =
    let lhs_name = match lhs with `Root -> "start" | `Nt i -> nt_name i in
    let is_root = lhs = `Root in
    let rhs_names =
      List.map (function T k -> t_name k | N i -> nt_name i) rhs
    in
    let all = lhs_name :: rhs_names in
    let occ_name sym_name occ_index =
      let same =
        List.filteri
          (fun j n -> j <= occ_index && String.equal n sym_name)
          all
      in
      let total = List.filter (String.equal sym_name) all in
      if List.length total = 1 then sym_name
      else Printf.sprintf "%s%d" sym_name (List.length same - 1)
    in
    let lhs_occ = occ_name lhs_name 0 in
    let rhs_occ i = occ_name (List.nth rhs_names i) (i + 1) in
    let v_ref_positions =
      List.concat
        (List.mapi
           (fun i s ->
             match s with
             | T _ -> [ (i, Printf.sprintf "%s.V" (rhs_occ i)) ]
             | N _ -> [])
           rhs)
    in
    let v_refs = List.map snd v_ref_positions in
    let nt_children =
      List.concat
        (List.mapi (fun i s -> match s with N _ -> [ i ] | T _ -> []) rhs)
    in
    let syn_ref pos p = Printf.sprintf "%s.S%d" (rhs_occ pos) p in
    let lhs_inh p = Printf.sprintf "%s.I%d" lhs_occ p in
    (* Family [q < p] values visible at a given schedule point. The pass
       model is record-oriented: any RHS attribute — earlier-pass or
       intrinsic included — becomes available only once the sweep reads
       that child's record, so rules defining a child's inherited may
       only reference positions at-or-before that child in visit order
       ([filter]); LHS-synthesized and limb rules see everything. *)
    let lower_refs ~filter p =
      List.concat_map
        (fun q ->
          List.filter_map
            (fun pos -> if filter pos then Some (syn_ref pos q) else None)
            nt_children
          @ if is_root then [] else [ lhs_inh q ])
        (List.init (p - 1) (fun q -> q + 1))
    in
    let pick a = a.(rng (Array.length a)) in
    let expr_over pool =
      let refs = Array.of_list ("1" :: "2" :: pool) in
      let rec expr depth =
        if depth = 0 then pick refs
        else
          match rng 5 with
          | 0 -> Printf.sprintf "(%s + %s)" (expr (depth - 1)) (expr (depth - 1))
          | 1 -> Printf.sprintf "(%s - %s)" (expr (depth - 1)) (expr (depth - 1))
          | 2 -> Printf.sprintf "Max(%s, %s)" (expr (depth - 1)) (expr (depth - 1))
          | 3 ->
              Printf.sprintf "IncrIfZero(%s, %s)" (expr (depth - 1))
                (expr (depth - 1))
          | _ -> pick refs
      in
      expr (rng (config.expr_depth + 1))
    in
    (* forced references keep the pass structure honest; a conditional
       may only sit at the top of a rule, so it appears only when
       nothing is folded around it *)
    let top_expr ~forced pool =
      match forced with
      | [] ->
          if rng 6 = 0 then
            let refs = Array.of_list ("1" :: "2" :: pool) in
            Printf.sprintf "if %s = %s then %s else %s endif" (pick refs)
              (pick refs) (expr_over pool) (expr_over pool)
          else expr_over pool
      | _ ->
          List.fold_left
            (fun acc f -> Printf.sprintf "(%s + %s)" f acc)
            (expr_over pool) forced
    in
    let rules = ref [] in
    let addr target rhs_text =
      rules := Printf.sprintf "%s = %s" target rhs_text :: !rules
    in
    addr
      (Printf.sprintf "Limb%d.TMP" limb_idx)
      (top_expr ~forced:[] (v_refs @ if is_root then [] else [ lhs_inh 1 ]));
    for p = 1 to p_count do
      let before pos m = if l2r p then m < pos else m > pos in
      let at_or_before pos m = m = pos || before pos m in
      let visited_sibs pos = List.filter (before pos) nt_children in
      let nearest_sib pos =
        match visited_sibs pos with
        | [] -> None
        | sibs ->
            Some
              (if l2r p then List.nth sibs (List.length sibs - 1)
               else List.hd sibs)
      in
      (* children's inherited *)
      List.iter
        (fun pos ->
          let sib_refs = List.map (fun j -> syn_ref j p) (visited_sibs pos) in
          let pool =
            sib_refs
            @ lower_refs ~filter:(at_or_before pos) p
            @ List.filter_map
                (fun (m, r) -> if at_or_before pos m then Some r else None)
                v_ref_positions
          in
          let forced =
            (match nearest_sib pos with
            | Some j -> [ syn_ref j p ]
            | None -> [])
            @
            if is_root then
              (* the child's own S(p-1): stored by the previous pass, read
                 with the child's record, so legal here — and it pins
                 family p strictly after family p-1 *)
              if p > 1 then [ syn_ref pos (p - 1) ] else []
            else [ lhs_inh p ]
          in
          let implicit_ok = not is_root in
          if not (implicit_ok && rng 3 = 0) then
            addr
              (Printf.sprintf "%s.I%d" (rhs_occ pos) p)
              (top_expr ~forced pool))
        nt_children;
      (* lhs synthesized *)
      let child_refs = List.map (fun j -> syn_ref j p) nt_children in
      let pool =
        child_refs
        @ lower_refs ~filter:(fun _ -> true) p
        @ v_refs
        @ if is_root then [] else [ lhs_inh p ]
      in
      let forced =
        (match child_refs with c :: _ -> [ c ] | [] -> [])
        @ if nt_children = [] && not is_root then [ lhs_inh p ] else []
      in
      let implicit_ok = List.length nt_children = 1 in
      if not (implicit_ok && rng 3 = 0) then
        addr (Printf.sprintf "%s.S%d" lhs_occ p) (top_expr ~forced pool)
    done;
    let rhs_text =
      String.concat " " (List.mapi (fun i _ -> rhs_occ i) rhs_names)
    in
    addf "  %s ::= %s -> Limb%d :\n    %s;\n" lhs_occ rhs_text limb_idx
      (String.concat ",\n    " (List.rev !rules))
  in
  List.iteri (fun i prod -> render_prod (i + 1) prod) productions;
  addf "end\n";
  { g_name = name; g_seed = seed; g_config = config; g_source = Buffer.contents buf }

(* ----- building and deriving workloads ----- *)

type built = {
  b_grammar : grammar;
  b_artifact : Linguist.Driver.artifact;
  b_cfg : Lg_grammar.Cfg.t;
  b_analysis : Lg_grammar.Analysis.t;
}

let build g =
  let file = g.g_name ^ ".ag" in
  (* no listing or generated code: at xl scale those overlays dwarf the
     analysis itself, and corpus consumers only want the artifact *)
  let options =
    {
      Linguist.Driver.default_options with
      Linguist.Driver.emit_listing = false;
      emit_code = false;
    }
  in
  match Linguist.Driver.process ~options ~file g.g_source with
  | Error diag ->
      Error (Linguist.Listing.errors_only ~source:g.g_source ~file diag)
  | Ok artifact ->
      let cfg = Linguist.Ir.to_cfg artifact.Linguist.Driver.ir in
      Ok { b_grammar = g; b_artifact = artifact; b_cfg = cfg;
           b_analysis = Lg_grammar.Analysis.compute cfg }

let build_exn g =
  match build g with
  | Ok b -> b
  | Error msg ->
      failwith (Printf.sprintf "Corpus_gen.build %s (seed %d): %s" g.g_name g.g_seed msg)

let sentence_tokens b ~seed ~size =
  let rng = Prng.fn (Prng.create seed) in
  Lg_grammar.Sentence_gen.sentence b.b_cfg b.b_analysis ~rng ~size

let sentence b ~seed ~size =
  let ts = sentence_tokens b ~seed ~size in
  let buf = Buffer.create 256 in
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf (if i mod 12 = 0 then '\n' else ' ');
      Buffer.add_string buf (Lg_grammar.Cfg.terminal_name b.b_cfg t))
    ts;
  Buffer.add_char buf '\n';
  Buffer.contents buf

type description = {
  d_name : string;
  d_seed : int;
  d_strategy : string;
  d_terminals : int;
  d_nonterminals : int;
  d_limbs : int;
  d_symbols : int;
  d_attrs : int;
  d_productions : int;
  d_rules : int;
  d_copy_rules : int;
  d_occurrences : int;
  d_passes : int;
  d_lalr_states : int option;
  d_lalr_conflicts : int option;
}

let describe ?(lalr = false) b =
  let ir = b.b_artifact.Linguist.Driver.ir in
  let stats = Linguist.Ir.stats ir in
  let count kind =
    Array.fold_left
      (fun n (s : Linguist.Ir.symbol) ->
        if s.Linguist.Ir.s_kind = kind then n + 1 else n)
      0 ir.Linguist.Ir.symbols
  in
  let states, conflicts =
    if not lalr then (None, None)
    else
      let tables = Lg_lalr.Tables.build b.b_cfg in
      ( Some (Lg_lalr.Tables.state_count tables),
        Some (List.length (Lg_lalr.Tables.unresolved_conflicts tables)) )
  in
  {
    d_name = b.b_grammar.g_name;
    d_seed = b.b_grammar.g_seed;
    d_strategy =
      (match b.b_grammar.g_config.strategy with
      | Bottom_up -> "bottom_up"
      | Recursive_descent -> "recursive_descent");
    d_terminals = count Linguist.Ir.Terminal;
    d_nonterminals = count Linguist.Ir.Nonterminal;
    d_limbs = count Linguist.Ir.Limb;
    d_symbols = stats.Linguist.Ir.n_symbols;
    d_attrs = stats.Linguist.Ir.n_attrs;
    d_productions = stats.Linguist.Ir.n_prods;
    d_rules = stats.Linguist.Ir.n_rules;
    d_copy_rules = stats.Linguist.Ir.n_copy_rules;
    d_occurrences = stats.Linguist.Ir.n_occurrences;
    d_passes =
      b.b_artifact.Linguist.Driver.passes.Linguist.Pass_assign.n_passes;
    d_lalr_states = states;
    d_lalr_conflicts = conflicts;
  }
