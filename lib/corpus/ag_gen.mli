(** Random attribute-grammar generation for whole-pipeline fuzzing.

    Grammars come out as {e text} and go through the real front end, so
    the scanner, parser, checker and implicit-copy-rule machinery are
    fuzzed together with pass assignment, scheduling, subsumption, and
    the engine/oracle pair. Generated grammars are well-formed by
    construction (declared symbols, complete rule sets — some
    deliberately left to the implicit copy-rule mechanism); they may
    still be rejected by the evaluability test (circular or too many
    passes), which callers treat as a discard, not a failure.

    This is the {e adversarial} generator — its random attribute
    dependencies probe the checker's rejection paths. {!Corpus_gen} is
    its constructive sibling: always-evaluable grammars at scale. The
    [rng] consumption order is part of the fuzz campaigns' reproducer
    contract ([test_fuzz.ml] replays seeds); don't reorder draws. *)

type config = {
  n_nonterminals : int;  (** besides the root *)
  n_terminals : int;
  max_rhs : int;
  max_expr_depth : int;
}

val default_config : config

val generate : ?config:config -> (int -> int) -> string
(** [generate rng] is a complete AG source text; [rng bound] must return
    a value in [\[0, bound)]. *)
