(** Corpus materialization: a directory of generated grammars, seeded
    input fleets, and one multi-tenant [linguist_jobs:1] jobfile.

    The layout under the corpus root:

    {v
    grammars/g000.ag ...     one generated grammar per tenant
    inputs/g000/i00.txt ...  sentence fleet per grammar
    jobs.json                check/analyze/translate/update mix
    v}

    Paths inside [jobs.json] are relative to the corpus root, so two
    {!write}s of one spec are byte-identical file trees — run the
    jobfile with the corpus root as the working directory. The job mix
    interleaves tenants (inputs outer, grammars inner), cycles APT
    stores over [mem]/[paged]/[prefetch], marks every third
    (grammar, input) pair an incremental ["update"] sharing a
    per-grammar doc, and gives every [s_fault_every]-th job on a disk
    store a deterministic transient-read fault spec. *)

type spec = {
  s_seed : int;
  s_grammars : int;
  s_profile : Corpus_gen.profile;
  s_inputs : int;  (** inputs per grammar *)
  s_input_size : int;  (** sentence size budget, tokens *)
  s_fault_every : int;  (** 0 = none; else every nth eligible job *)
}

val default : spec
(** Seed 1: 20 small-profile grammars, 10 inputs each, faults on every
    7th disk-store job — the shape [bench 'corpus'] runs. *)

val vary : Corpus_gen.config -> int -> Corpus_gen.config
(** The per-grammar shape variation [grammars] applies: index-cycled
    sizes, pass counts 1..[passes], and alternating strategies. *)

val grammars : spec -> Corpus_gen.grammar list

val jobs : spec -> Lg_server.Jobfile.job list
(** The job list alone (what [write] puts in [jobs.json]). *)

val grammar_rel : int -> string
(** [grammars/gNNN.ag], relative to the corpus root. *)

val input_rel : int -> int -> string
(** [inputs/gNNN/iKK.txt], relative to the corpus root. *)

type corpus = {
  c_dir : string;
  c_spec : spec;
  c_built : Corpus_gen.built list;
  c_jobs : Lg_server.Jobfile.job list;
  c_jobfile : string;  (** absolute path of [jobs.json] *)
}

val write : dir:string -> spec -> corpus
(** Generate, build and lay out the whole corpus under [dir] (created
    if missing). Building is the expensive step; the returned
    {!Corpus_gen.built} list lets callers reuse the artifacts.
    @raise Failure if a generated grammar fails to build (a generator
    bug — corpus grammars are evaluable by construction). *)
