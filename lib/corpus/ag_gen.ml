(* Random attribute-grammar generation for whole-pipeline fuzzing.

   Grammars are generated as *text* and pushed through the real front end,
   so the scanner, parser, checker and implicit-copy-rule machinery are
   fuzzed together with pass assignment, scheduling, subsumption, and the
   engine/oracle pair. Generated grammars are well-formed by construction
   (declared symbols, complete rule sets — some deliberately left to the
   implicit copy-rule mechanism); they may still be rejected by the
   evaluability test (circular or too many passes), which callers treat as
   a discard, not a failure. *)

type config = {
  n_nonterminals : int;  (** besides the root *)
  n_terminals : int;
  max_rhs : int;
  max_expr_depth : int;
}

let default_config =
  { n_nonterminals = 3; n_terminals = 2; max_rhs = 3; max_expr_depth = 2 }

(* Attribute name pools are shared across symbols so that same-name
   copy-rules (the subsumption targets) arise naturally. *)
let inh_pool = [| "ENV"; "DEPTH" |]
let syn_pool = [| "VAL"; "SIZE" |]

type sym = {
  name : string;
  inh : string list;
  syn : string list;
  terminal : bool;
}

let pick rng a = a.(rng (Array.length a))

let subset rng pool ~at_least =
  let chosen =
    Array.to_list pool |> List.filter (fun _ -> rng 2 = 0)
  in
  if List.length chosen >= at_least then chosen
  else [ pool.(rng (Array.length pool)) ]

(* One production: lhs, rhs symbols, and which (occurrence, attr) targets
   get explicit rules vs are left for the implicit mechanism. *)
let generate ?(config = default_config) rng =
  let terminals =
    List.init config.n_terminals (fun i ->
        {
          name = Printf.sprintf "t%c" (Char.chr (Char.code 'a' + i));
          inh = [];
          syn = [ "V" ];
          terminal = true;
        })
  in
  let root =
    { name = "start"; inh = []; syn = subset rng syn_pool ~at_least:1; terminal = false }
  in
  let nonterminals =
    root
    :: List.init config.n_nonterminals (fun i ->
           {
             name = Printf.sprintf "n%c" (Char.chr (Char.code 'a' + i));
             inh = subset rng inh_pool ~at_least:0;
             syn = subset rng syn_pool ~at_least:1;
             terminal = false;
           })
  in
  let all_nts = Array.of_list nonterminals in
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "grammar Fuzz;\nroot start;\nstrategy %s;\n"
    (if rng 2 = 0 then "bottom_up" else "recursive_descent");
  addf "terminals\n";
  List.iter
    (fun t -> addf "  %s has intrinsic V : int;\n" t.name)
    terminals;
  addf "end\nnonterminals\n";
  List.iter
    (fun nt ->
      let attrs =
        List.map (fun a -> Printf.sprintf "inh %s : int" a) nt.inh
        @ List.map (fun a -> Printf.sprintf "syn %s : int" a) nt.syn
      in
      addf "  %s has %s;\n" nt.name (String.concat ", " attrs))
    nonterminals;
  addf "end\nlimbs\n";
  (* one limb per production; productions enumerated below in same order *)
  let limb_count = ref 0 in
  let productions = ref [] in
  (* Every nonterminal gets one terminal-only production (productivity)
     plus 1-2 recursive ones. *)
  List.iteri
    (fun nt_idx _nt ->
      let n_extra = 1 + rng 2 in
      let shapes =
        [ `Leaf ]
        :: List.init n_extra (fun _ ->
               List.init (1 + rng config.max_rhs) (fun _ ->
                   if rng 3 = 0 then `Term (rng config.n_terminals)
                   else `Nt (rng (Array.length all_nts))))
      in
      List.iter
        (fun shape -> productions := (nt_idx, shape) :: !productions)
        shapes)
    nonterminals;
  let productions = List.rev !productions in
  List.iteri
    (fun i _ ->
      ignore i;
      incr limb_count;
      addf "  Limb%d has TMP : int;\n" !limb_count)
    productions;
  addf "end\nproductions\n";
  (* Render a production with complete (possibly implicit) semantics. *)
  let render_prod limb_idx (lhs_idx, shape) =
    let lhs = all_nts.(lhs_idx) in
    let rhs_syms =
      List.map
        (function
          | `Leaf -> List.nth terminals (rng config.n_terminals)
          | `Term k -> List.nth terminals k
          | `Nt k -> all_nts.(k))
        (match shape with [ `Leaf ] -> [ `Leaf ] | s -> s)
    in
    (* occurrence names: base + index over LHS-then-RHS occurrence list *)
    let occ_name sym_name occ_index =
      (* occ_index: 0 = LHS, i>0 = RHS position i-1; suffix counts
         occurrences of the same base symbol *)
      let all = lhs.name :: List.map (fun s -> s.name) rhs_syms in
      let same = List.filteri (fun j n -> j <= occ_index && String.equal n sym_name) all in
      let total = List.filter (String.equal sym_name) all in
      if List.length total = 1 then sym_name
      else Printf.sprintf "%s%d" sym_name (List.length same - 1)
    in
    let lhs_occ = occ_name lhs.name 0 in
    let rhs_occ i = occ_name (List.nth rhs_syms i).name (i + 1) in
    (* available references for expressions *)
    let refs =
      List.map (fun a -> Printf.sprintf "%s.%s" lhs_occ a) lhs.inh
      @ List.concat
          (List.mapi
             (fun i s ->
               List.map (fun a -> Printf.sprintf "%s.%s" (rhs_occ i) a) s.syn
               @
               if s.terminal then [ Printf.sprintf "%s.V" (rhs_occ i) ] else [])
             rhs_syms)
    in
    let refs = Array.of_list ("1" :: "2" :: refs) in
    let rec expr depth =
      if depth = 0 then pick rng refs
      else
        match rng 5 with
        | 0 -> Printf.sprintf "(%s + %s)" (expr (depth - 1)) (expr (depth - 1))
        | 1 -> Printf.sprintf "(%s - %s)" (expr (depth - 1)) (expr (depth - 1))
        | 2 -> Printf.sprintf "Max(%s, %s)" (expr (depth - 1)) (expr (depth - 1))
        | 3 -> Printf.sprintf "IncrIfZero(%s, %s)" (expr (depth - 1)) (expr (depth - 1))
        | _ -> pick rng refs
    in
    let top_expr () =
      if rng 4 = 0 then
        Printf.sprintf "if %s = %s then %s else %s endif" (pick rng refs)
          (pick rng refs)
          (expr (rng config.max_expr_depth))
          (expr (rng config.max_expr_depth))
      else expr (rng config.max_expr_depth)
    in
    let rules = ref [] in
    let addr target rhs = rules := Printf.sprintf "%s = %s" target rhs :: !rules in
    (* limb attr *)
    addr (Printf.sprintf "Limb%d.TMP" limb_idx) (top_expr ());
    (* RHS inherited attrs: sometimes left implicit when legal *)
    List.iteri
      (fun i s ->
        List.iter
          (fun a ->
            let implicit_ok = List.mem a lhs.inh in
            if not (implicit_ok && rng 2 = 0) then
              addr (Printf.sprintf "%s.%s" (rhs_occ i) a) (top_expr ()))
          s.inh)
      rhs_syms;
    (* LHS synthesized attrs: sometimes left implicit when legal *)
    List.iter
      (fun a ->
        let carriers =
          List.sort_uniq compare
            (List.filter_map
               (fun s -> if List.mem a s.syn then Some s.name else None)
               rhs_syms)
        in
        let occurrences_of_carrier =
          match carriers with
          | [ c ] ->
              List.length
                (List.filter (fun s -> String.equal s.name c) rhs_syms)
          | _ -> 0
        in
        let implicit_ok = occurrences_of_carrier = 1 in
        if not (implicit_ok && rng 2 = 0) then
          addr (Printf.sprintf "%s.%s" lhs_occ a) (top_expr ()))
      lhs.syn;
    let rhs_text = String.concat " " (List.mapi (fun i _ -> rhs_occ i) rhs_syms) in
    addf "  %s ::= %s -> Limb%d :\n    %s;\n" lhs_occ rhs_text limb_idx
      (String.concat ",\n    " (List.rev !rules))
  in
  List.iteri (fun i p -> render_prod (i + 1) p) productions;
  addf "end\n";
  Buffer.contents buf
