(* Affinity-sharded placement: the pure planning half of the fabric
   coordinator. Jobs naming the same grammar (same session digest) want
   to land on the same worker so the grammar compiles once per worker —
   but a hot grammar must not turn one worker into the whole run's
   critical path, so oversized affinity groups spill into extra chunks
   capped at the balanced share, and chunks go to workers greedy
   longest-first. Everything here is deterministic: group order is
   first appearance, chunk order is (size desc, first index asc), and
   load ties break toward the lowest worker index. *)

type plan = {
  assignments : int list array;
      (* worker -> original item indices, ascending *)
  groups : int;
  spilled : int;
}

let plan ~workers ~affinity items =
  let workers = max 1 workers in
  let n = List.length items in
  (* group indices by affinity key, first-appearance order; keyless
     items are singleton groups (nothing to co-locate) *)
  let order = ref [] in
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i item ->
      match affinity item with
      | None -> order := `Singleton i :: !order
      | Some key ->
          if not (Hashtbl.mem table key) then begin
            Hashtbl.add table key (ref []);
            order := `Group key :: !order
          end;
          let cell = Hashtbl.find table key in
          cell := i :: !cell)
    items;
  let groups =
    List.rev_map
      (function
        | `Singleton i -> [ i ]
        | `Group key -> List.rev !(Hashtbl.find table key))
      !order
  in
  let n_groups = List.length groups in
  (* the balanced share: no chunk bigger than ceil(n/workers), so one
     hot grammar cannot capture more than a worker's fair slice *)
  let target = max 1 ((n + workers - 1) / workers) in
  let spilled = ref 0 in
  let chunks =
    List.concat_map
      (fun group ->
        let rec split acc = function
          | [] -> List.rev acc
          | rest ->
              let rec take k taken rest =
                match (k, rest) with
                | 0, _ | _, [] -> (List.rev taken, rest)
                | k, x :: rest -> take (k - 1) (x :: taken) rest
              in
              let chunk, rest = take target [] rest in
              if acc <> [] then incr spilled;
              split (chunk :: acc) rest
        in
        split [] group)
      groups
  in
  (* longest-first greedy onto the least-loaded worker; ties in chunk
     size keep first-appearance order, ties in load pick the lowest
     worker index — the plan is a function of its inputs alone *)
  let indexed = List.mapi (fun i c -> (i, c)) chunks in
  let sorted =
    List.sort
      (fun (ia, ca) (ib, cb) ->
        match compare (List.length cb) (List.length ca) with
        | 0 -> compare ia ib
        | c -> c)
      indexed
  in
  let load = Array.make workers 0 in
  let assignments = Array.make workers [] in
  List.iter
    (fun (_, chunk) ->
      let best = ref 0 in
      for w = 1 to workers - 1 do
        if load.(w) < load.(!best) then best := w
      done;
      load.(!best) <- load.(!best) + List.length chunk;
      assignments.(!best) <- assignments.(!best) @ chunk)
    sorted;
  let assignments = Array.map (List.sort compare) assignments in
  { assignments; groups = n_groups; spilled = !spilled }
