(** Grammar-affinity job placement — the pure planning half of the
    fabric {!Coordinator}, separated out so scheduling policy is
    testable without sockets.

    Jobs with the same affinity key (in practice: the session digest
    their tenant caches under, {!Lg_server.Batch.culprit}) are grouped
    so they land on one worker and the grammar compiles once per
    worker. A group bigger than the balanced share
    [ceil (items / workers)] is split — {e spilled} — into share-sized
    chunks so a hot grammar can't serialize the run behind one worker.
    Chunks are then placed longest-first onto the least-loaded worker.

    The plan is deterministic: groups keep first-appearance order,
    equal-sized chunks keep that order, and load ties break toward the
    lowest worker index — the same jobs and worker count always
    produce the same placement. *)

type plan = {
  assignments : int list array;
      (** one entry per worker: the original item indices assigned to
          it, ascending *)
  groups : int;  (** distinct affinity groups (keyless items count 1 each) *)
  spilled : int;
      (** chunks beyond each group's first — how often affinity gave
          way to balance *)
}

val plan : workers:int -> affinity:('a -> string option) -> 'a list -> plan
(** Place [items] onto [max 1 workers] workers. [affinity] answers an
    item's co-location key; [None] means the item has nothing to share
    (a [check] job) and is placed purely by load. Every index appears
    in exactly one assignment list. *)
