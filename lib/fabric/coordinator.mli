(** The distributed evaluation coordinator: [linguist coordinate].

    Owns a jobfile and a list of worker endpoints (serve processes,
    usually reached over their [--listen] TCP port) and distributes the
    jobs so the merged result document is {e byte-identical} to
    {!Lg_server.Batch.run_sequential} over the same jobfile
    ([Batch.to_json ~timings:false]) — the fabric adds machines, never
    changes answers.

    How (see [docs/FABRIC.md] for the full story):
    - {b Placement} is {!Shard}'s affinity plan: jobs naming the same
      grammar (same session digest) go to the same worker, so each
      grammar compiles at most once per worker; a hot grammar spills
      into balanced chunks rather than serializing the run.
    - {b Inputs are inlined} ([j_source]) — workers need no corpus
      files. Grammars ship on demand: a worker answering
      [grammar_miss] is sent a [grammar_put] of the content-addressed
      source, then the job retries on that worker.
    - {b Lanes}: [update] jobs dispatch on the interactive lane,
      everything else on bulk, so a worker's own interactive clients
      keep preempting fabric bulk work at its queue.
    - {b Failures}: transport loss marks the worker dead and re-queues
      everything it owed onto the least-loaded survivor; a typed
      serving failure (exit 50–52) re-dispatches to a different worker
      up to [redispatch_limit] times before being accepted as the
      outcome. Every job ends with exactly one outcome; only with the
      whole fleet gone does a job fail with the synthesized
      [worker lost] outcome (exit 51). *)

type worker_report = {
  w_endpoint : string;
  w_assigned : int;  (** jobs ever queued to it (incl. re-queues) *)
  w_completed : int;  (** outcomes it produced *)
  w_grammar_puts : int;  (** grammars shipped to it by the handshake *)
  w_session_builds : int;
      (** the worker's [server.session_builds] counter after the run —
          the builds-once-per-grammar evidence; [-1] if unreachable *)
  w_lost : bool;
}

type report = {
  summary : Lg_server.Batch.summary;
      (** outcomes in jobfile order — [Batch.to_json ~timings:false]
          of this is the byte-identity artifact *)
  workers : worker_report list;
  groups : int;  (** distinct affinity groups *)
  spilled : int;  (** chunks split off oversized groups for balance *)
  redispatched : int;  (** jobs moved between workers (loss + typed) *)
}

val run :
  ?attempts:int ->
  ?redispatch_limit:int ->
  ?log:(string -> unit) ->
  workers:Lg_server.Transport.endpoint list ->
  Lg_server.Jobfile.job list ->
  report
(** Distribute [jobs] over [workers]. [attempts] (default 3) is the
    per-request transport retry budget — exhausting it is what declares
    a worker lost. [redispatch_limit] (default 1) bounds how often one
    job chases typed 50–52 failures across workers. [log] (default
    silent) receives one-line progress/stat messages — the CLI points
    it at stderr, keeping stdout's result document clean. Raises
    [Invalid_argument] on an empty worker list. *)
