(* The fabric coordinator: one process that owns a jobfile and a list
   of worker endpoints, and distributes the jobs so the merged results
   are byte-identical to running the jobfile locally.

   Placement is {!Shard}'s affinity plan — jobs naming the same grammar
   land together so each grammar compiles once per worker. Each worker
   gets a dispatch thread working through that worker's two lanes
   (interactive [update] jobs ahead of bulk), one request per job over a
   fresh connection, with the grammar-shipping handshake inline: a
   [grammar_miss] refusal is answered with a [grammar_put] of the
   content-addressed source, then the job is retried on the same
   worker. Inputs are inlined into the jobs themselves ([j_source]), so
   worker hosts need no copy of the corpus.

   Failure semantics: a transport failure (connect retries exhausted)
   marks the worker lost and re-queues everything it still owed onto
   the least-loaded surviving worker; a job that comes back with a
   typed serving failure (exit 50–52: deadline, worker crash,
   quarantine) is re-dispatched to a different worker up to
   [redispatch_limit] times before the failure is accepted as the
   job's outcome. Either way every job ends with exactly one outcome —
   a final serial sweep catches work stranded by late deaths, and only
   if the whole fleet is gone does a job get the synthesized
   [worker_lost] failure. *)

open Lg_support.Json_out
module Transport = Lg_server.Transport
module Server = Lg_server.Server
module Jobfile = Lg_server.Jobfile
module Batch = Lg_server.Batch

type worker_report = {
  w_endpoint : string;
  w_assigned : int;
  w_completed : int;
  w_grammar_puts : int;
  w_session_builds : int;  (** scraped from the worker's metrics; -1 if lost *)
  w_lost : bool;
}

type report = {
  summary : Batch.summary;
  workers : worker_report list;
  groups : int;
  spilled : int;
  redispatched : int;
}

(* ---------- preparation ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type prepared = {
  p_index : int;
  p_job : Jobfile.job;  (* input inlined *)
  p_grammar : (string * string * string) option;
      (* (digest, basename, source) — the handshake's shipment *)
  p_interactive : bool;
  mutable p_redispatched : int;
}

(* inline the input and, for grammar tenants, read the source once per
   distinct path so the digest and the eventual grammar_put agree *)
let prepare jobs =
  let grammars = Hashtbl.create 8 in
  let grammar_of path =
    match Hashtbl.find_opt grammars path with
    | Some g -> g
    | None ->
        let g =
          match read_file path with
          | source ->
              Some
                ( Lg_server.Session.digest ~kind:"translator" ~source,
                  Filename.basename path,
                  source )
          | exception Sys_error _ -> None
        in
        Hashtbl.add grammars path g;
        g
  in
  List.mapi
    (fun i (job : Jobfile.job) ->
      let job =
        match job.Jobfile.j_source with
        | Some _ -> job
        | None -> (
            match read_file job.Jobfile.j_file with
            | source -> { job with Jobfile.j_source = Some source }
            | exception Sys_error _ ->
                (* unreadable here means unreadable anywhere: ship the
                   job as-is and let the worker fail it exactly as a
                   local run would *)
                job)
      in
      let p_grammar =
        match job.Jobfile.j_op with
        | Jobfile.Translate (Jobfile.Grammar path)
        | Jobfile.Update (Jobfile.Grammar path) ->
            grammar_of path
        | _ -> None
      in
      let p_interactive =
        match job.Jobfile.j_op with Jobfile.Update _ -> true | _ -> false
      in
      { p_index = i; p_job = job; p_grammar; p_interactive; p_redispatched = 0 })
    jobs

(* ---------- the wire ---------- *)

let outcome_of_response doc : Batch.outcome option =
  match (member "id" doc, member "op" doc) with
  | Some (Str o_id), Some (Str o_op) ->
      Some
        {
          Batch.o_id;
          o_op;
          o_file =
            (match member "file" doc with Some (Str f) -> f | _ -> "");
          o_ok = (match member "ok" doc with Some (Bool b) -> b | _ -> false);
          o_exit =
            (match member "exit" doc with
            | Some (Num n) -> int_of_float n
            | _ -> 1);
          o_error =
            (match member "error" doc with Some (Str m) -> Some m | _ -> None);
          o_payload =
            (match member "payload" doc with Some p -> p | None -> Null);
          o_seconds = 0.0;
        }
  | _ -> None

let error_of_response doc =
  match (member "ok" doc, member "error" doc) with
  | Some (Bool false), Some (Str msg) -> Some msg
  | _ -> None

(* the coordinator's own failure class when the whole fleet is gone:
   worker_crashed's exit code, so downstream triage treats it like any
   other serving loss *)
let worker_lost_outcome (p : prepared) =
  {
    Batch.o_id = p.p_job.Jobfile.j_id;
    o_op = Jobfile.op_name p.p_job.Jobfile.j_op;
    o_file = p.p_job.Jobfile.j_file;
    o_ok = false;
    o_exit = 51;
    o_error = Some "worker lost: no surviving worker to re-dispatch to";
    o_payload = Null;
    o_seconds = 0.0;
  }

(* ---------- per-worker dispatch state ---------- *)

type worker = {
  k_index : int;
  k_endpoint : Transport.endpoint;
  mutable k_interactive : prepared list;  (* both lanes: FIFO, reversed *)
  mutable k_bulk : prepared list;
  mutable k_alive : bool;
  mutable k_closed : bool;  (* thread done; no new work may land here *)
  mutable k_assigned : int;
  mutable k_completed : int;
  mutable k_puts : int;
  k_shipped : (string, unit) Hashtbl.t;
}

type st = {
  lock : Mutex.t;
  fleet : worker array;
  results : Batch.outcome option array;
  mutable redispatched : int;
  attempts : int;
  redispatch_limit : int;
  log : string -> unit;
}

let locked st f =
  Mutex.lock st.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) f

(* under the lock *)
let remaining w = List.length w.k_interactive + List.length w.k_bulk

let push w p =
  w.k_assigned <- w.k_assigned + 1;
  if p.p_interactive then w.k_interactive <- w.k_interactive @ [ p ]
  else w.k_bulk <- w.k_bulk @ [ p ]

(* under the lock: the surviving worker with the least work left, for
   re-queues — [None] once the whole fleet is dead or closed *)
let best_target st ~not_worker =
  Array.fold_left
    (fun best w ->
      if w.k_alive && (not w.k_closed) && w.k_index <> not_worker then
        match best with
        | Some b when remaining b <= remaining w -> best
        | _ -> Some w
      else best)
    None st.fleet

let job_request (p : prepared) =
  let lane = if p.p_interactive then "interactive" else "bulk" in
  match p.p_grammar with
  | Some (digest, _, _) ->
      Obj
        [
          ("op", Str "fabric_job");
          ("lane", Str lane);
          ("session", Str digest);
          ("job", Jobfile.job_to_json p.p_job);
        ]
  | None ->
      (* no grammar to resolve — the plain job op, demoted to the
         requested lane *)
      Obj
        [
          ("op", Str "job");
          ("lane", Str lane);
          ("job", Jobfile.job_to_json p.p_job);
        ]

exception Worker_down of exn

let request st w doc =
  match
    Server.request_endpoint ~attempts:st.attempts
      ~jitter_seed:(w.k_index + 1) ~endpoint:w.k_endpoint doc
  with
  | response -> response
  | exception e -> raise (Worker_down e)

(* one job against one worker, grammar handshake inline; answers the
   outcome, raises [Worker_down] when the transport gives out *)
let dispatch st w (p : prepared) =
  let response = ref (request st w (job_request p)) in
  (match (error_of_response !response, p.p_grammar) with
  | Some "grammar_miss", Some (digest, name, source) ->
      let put =
        request st w
          (Obj
             [
               ("op", Str "grammar_put");
               ("digest", Str digest);
               ("name", Str name);
               ("source", Str source);
             ])
      in
      (match member "ok" put with
      | Some (Bool true) ->
          locked st (fun () ->
              w.k_puts <- w.k_puts + 1;
              Hashtbl.replace w.k_shipped digest ());
          response := request st w (job_request p)
      | _ -> ())
  | _ -> ());
  match outcome_of_response !response with
  | Some outcome -> outcome
  | None ->
      (* a refusal without a job outcome (draining, a handshake that
         would not converge): a final failure, not a lost job *)
      {
        (worker_lost_outcome p) with
        Batch.o_exit = 1;
        o_error =
          Some
            (match error_of_response !response with
            | Some msg -> msg
            | None -> "unintelligible worker response");
      }

let typed_serving_failure (o : Batch.outcome) =
  (not o.Batch.o_ok) && o.Batch.o_exit >= 50 && o.Batch.o_exit <= 52

let record st (p : prepared) outcome = st.results.(p.p_index) <- Some outcome

(* a worker died owing work: everything still queued (plus the job in
   flight) moves to the least-loaded survivor; with no survivor it
   stays unrecorded for the final sweep to settle *)
let fail_worker st w (p : prepared) e =
  let stranded =
    locked st (fun () ->
        w.k_alive <- false;
        w.k_closed <- true;
        let owed = (p :: w.k_interactive) @ w.k_bulk in
        w.k_interactive <- [];
        w.k_bulk <- [];
        List.filter
          (fun p ->
            match best_target st ~not_worker:w.k_index with
            | Some target ->
                push target p;
                st.redispatched <- st.redispatched + 1;
                false
            | None -> true)
          owed)
  in
  st.log
    (Printf.sprintf "fabric: worker %s lost (%s), %d job(s) re-queued"
       (Transport.to_string w.k_endpoint)
       (Printexc.to_string e)
       (List.length stranded));
  ignore stranded

let worker_loop st w =
  let pop () =
    locked st (fun () ->
        match (w.k_interactive, w.k_bulk) with
        | p :: rest, _ ->
            w.k_interactive <- rest;
            Some p
        | [], p :: rest ->
            w.k_bulk <- rest;
            Some p
        | [], [] ->
            w.k_closed <- true;
            None)
  in
  let rec go () =
    match pop () with
    | None -> ()
    | Some p -> (
        match dispatch st w p with
        | outcome ->
            (* a typed serving failure gets another chance on a
               different worker — the 50–52 codes are exactly the
               "this host, this moment" classes *)
            let redispatch =
              typed_serving_failure outcome
              && p.p_redispatched < st.redispatch_limit
              && locked st (fun () ->
                     match best_target st ~not_worker:w.k_index with
                     | Some target ->
                         p.p_redispatched <- p.p_redispatched + 1;
                         push target p;
                         st.redispatched <- st.redispatched + 1;
                         true
                     | None -> false)
            in
            if not redispatch then begin
              record st p outcome;
              locked st (fun () -> w.k_completed <- w.k_completed + 1)
            end;
            go ()
        | exception Worker_down e -> fail_worker st w p e)
  in
  go ()

(* ---------- the end-of-run scrape ---------- *)

let scrape_builds st w =
  if not w.k_alive then -1
  else
    match request st w (Obj [ ("op", Str "metrics") ]) with
    | exception Worker_down _ -> -1
    | response -> (
        match member "metrics" response with
        | Some metrics -> (
            match member "server.session_builds" metrics with
            | Some (Num n) -> int_of_float n
            | _ -> 0)
        | None -> -1)

(* ---------- the run ---------- *)

let run ?(attempts = 3) ?(redispatch_limit = 1) ?(log = ignore) ~workers jobs =
  if workers = [] then invalid_arg "Coordinator.run: no workers";
  let started = Unix.gettimeofday () in
  let prepared = prepare jobs in
  let shard =
    Shard.plan ~workers:(List.length workers)
      ~affinity:(fun p -> Option.map fst (Batch.culprit p.p_job))
      prepared
  in
  let prepared_arr = Array.of_list prepared in
  let st =
    {
      lock = Mutex.create ();
      fleet =
        Array.of_list
          (List.mapi
             (fun i endpoint ->
               {
                 k_index = i;
                 k_endpoint = endpoint;
                 k_interactive = [];
                 k_bulk = [];
                 k_alive = true;
                 k_closed = false;
                 k_assigned = 0;
                 k_completed = 0;
                 k_puts = 0;
                 k_shipped = Hashtbl.create 8;
               })
             workers);
      results = Array.make (List.length jobs) None;
      redispatched = 0;
      attempts;
      redispatch_limit;
      log;
    }
  in
  Array.iteri
    (fun w indices ->
      List.iter (fun i -> push st.fleet.(w) prepared_arr.(i)) indices)
    shard.Shard.assignments;
  log
    (Printf.sprintf "fabric: %d job(s), %d group(s), %d spilled, %d worker(s)"
       (List.length jobs) shard.Shard.groups shard.Shard.spilled
       (List.length workers));
  let threads =
    Array.to_list
      (Array.map (fun w -> Thread.create (worker_loop st) w) st.fleet)
  in
  List.iter Thread.join threads;
  (* the sweep: anything stranded by a death after the survivors had
     already closed runs serially on whoever is still alive *)
  Array.iteri
    (fun i result ->
      if result = None then begin
        let p = prepared_arr.(i) in
        let rec try_fleet k =
          if k >= Array.length st.fleet then record st p (worker_lost_outcome p)
          else
            let w = st.fleet.(k) in
            if not w.k_alive then try_fleet (k + 1)
            else
              match dispatch st w p with
              | outcome ->
                  record st p outcome;
                  w.k_completed <- w.k_completed + 1;
                  (* a swept job is by construction running somewhere
                     other than the dead worker it was assigned to *)
                  st.redispatched <- st.redispatched + 1
              | exception Worker_down e ->
                  fail_worker st w p e;
                  try_fleet (k + 1)
        in
        try_fleet 0
      end)
    st.results;
  let outcomes =
    Array.to_list
      (Array.mapi
         (fun i -> function
           | Some o -> o
           | None -> worker_lost_outcome prepared_arr.(i))
         st.results)
  in
  let n_ok = List.length (List.filter (fun o -> o.Batch.o_ok) outcomes) in
  let reports =
    Array.to_list
      (Array.map
         (fun w ->
           let r =
             {
               w_endpoint = Transport.to_string w.k_endpoint;
               w_assigned = w.k_assigned;
               w_completed = w.k_completed;
               w_grammar_puts = w.k_puts;
               w_session_builds = scrape_builds st w;
               w_lost = not w.k_alive;
             }
           in
           log
             (Printf.sprintf
                "fabric: worker %s jobs=%d grammar_puts=%d session_builds=%d%s"
                r.w_endpoint r.w_completed r.w_grammar_puts r.w_session_builds
                (if r.w_lost then " lost" else ""));
           r)
         st.fleet)
  in
  {
    summary =
      {
        Batch.outcomes;
        n_ok;
        n_failed = List.length outcomes - n_ok;
        workers = List.length workers;
        wall_seconds = Unix.gettimeofday () -. started;
      };
    workers = reports;
    groups = shard.Shard.groups;
    spilled = shard.Shard.spilled;
    redispatched = st.redispatched;
  }
